package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
)

// AblationRow measures one Stage-2 strategy on a fixed GSP selection.
type AblationRow struct {
	Strategy    string
	VMs         int
	BytesPerH   int64
	CostUSD     float64
	SplitTopics int
	Elapsed     time.Duration
}

// RunStage2Ablation goes beyond the paper's ladder: it isolates every
// Stage-2 strategy (first-fit, best-fit-decreasing, each CBP flag alone,
// and each cumulative combination) on one GSP selection, exposing how much
// of CBP's win comes from grouping versus item ordering versus VM choice.
func RunStage2Ablation(ctx context.Context, d Dataset, instance pricing.InstanceType, tau int64, scale float64) ([]AblationRow, error) {
	w, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	model := ModelFor(instance, w)
	sel, err := core.GreedySelectPairsContext(ctx, w, core.Config{Tau: tau})
	if err != nil {
		return nil, err
	}
	base := core.Config{Tau: tau, MessageBytes: MessageBytes, Model: model}

	type strat struct {
		name string
		run  func() (*core.Allocation, error)
	}
	withOpts := func(opts core.OptFlags) func() (*core.Allocation, error) {
		cfg := base
		cfg.Opts = opts
		return func() (*core.Allocation, error) { return core.CustomBinPackingContext(ctx, sel, cfg) }
	}
	strategies := []strat{
		{"FFBP (pair first-fit)", func() (*core.Allocation, error) { return core.FFBinPackingContext(ctx, sel, base) }},
		{"BFD (pair best-fit-decreasing)", func() (*core.Allocation, error) { return core.BFDBinPackingContext(ctx, sel, base) }},
		{"CBP group-only", withOpts(0)},
		{"CBP +expensive-first", withOpts(core.OptExpensiveTopicFirst)},
		{"CBP +most-free-vm (alone)", withOpts(core.OptMostFreeVM)},
		{"CBP +cost-based (alone)", withOpts(core.OptCostBased)},
		{"CBP expensive+most-free", withOpts(core.OptExpensiveTopicFirst | core.OptMostFreeVM)},
		{"CBP all", withOpts(core.OptAll)},
	}

	rows := make([]AblationRow, 0, len(strategies))
	for _, s := range strategies {
		start := time.Now()
		alloc, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		elapsed := time.Since(start)
		u := alloc.ComputeUtilization()
		rows = append(rows, AblationRow{
			Strategy:    s.name,
			VMs:         alloc.NumVMs(),
			BytesPerH:   alloc.TotalBytesPerHour(),
			CostUSD:     alloc.Cost(model).USD(),
			SplitTopics: u.SplitTopics,
			Elapsed:     elapsed,
		})
	}
	return rows, nil
}

// AblationTable renders the ablation rows.
func AblationTable(d Dataset, tau int64, rows []AblationRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Stage-2 ablation on %s, τ=%d (same GSP selection)", d, tau),
		"strategy", "VMs", "bytes/h", "cost $", "split topics", "time")
	for _, r := range rows {
		t.AddRow(r.Strategy, r.VMs, r.BytesPerH, r.CostUSD, r.SplitTopics,
			r.Elapsed.Round(time.Microsecond).String())
	}
	return t
}
