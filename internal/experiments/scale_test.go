package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/pubsub-systems/mcss/internal/workload"
)

func TestScaleWorkloadShape(t *testing.T) {
	w, err := ScaleWorkload(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if p := w.NumPairs(); p < 9_000 || p > 10_000 {
		t.Errorf("NumPairs = %d, want ~10k", p)
	}
	// Deterministic: the same size must rebuild the identical workload.
	w2, err := ScaleWorkload(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumPairs() != w2.NumPairs() || w.NumTopics() != w2.NumTopics() {
		t.Fatal("ScaleWorkload is not deterministic")
	}
	for v := 0; v < 3; v++ {
		a, b := w.Topics(workload.SubID(v)), w2.Topics(workload.SubID(v))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("subscriber %d interests differ between builds", v)
			}
		}
	}
}

// The short sweep must produce a verified row per (size, fleet, packer)
// and a JSON document that round-trips.
func TestRunScaleShortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep timing run")
	}
	res, err := RunScale(context.Background(), ScaleSizesShort)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ScaleSizesShort) * 2 * 2 // sizes × fleets × packers
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.VMs <= 0 || row.Seconds <= 0 || row.PairsPerSec <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
		// The density calibration must keep the fleet growing with the
		// workload — the regime the sweep exists to measure.
		if row.VMs < int(row.Pairs/(4*scalePairsPerVM)) {
			t.Errorf("%s/%s at %d pairs: only %d VMs — density calibration broken",
				row.Fleet, row.Packer, row.Pairs, row.VMs)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ScaleResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Bench != "stage2-scale" || len(back.Rows) != len(res.Rows) {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
	if res.Table() == nil {
		t.Fatal("nil table")
	}
}
