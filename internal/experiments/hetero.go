package experiments

import (
	"context"
	"errors"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/workload"
)

// FleetFor returns the full instance catalog as a fleet whose per-VM
// capacities sit on the same calibrated bytes-per-mbps scale ModelFor uses,
// so heterogeneous and homogeneous solves are compared on identical
// workload-to-capacity footing.
func FleetFor(w *workload.Workload) pricing.Fleet {
	m := ModelFor(pricing.C3Large, w)
	bpm := m.CapacityOverrideBytesPerHour / pricing.C3Large.LinkMbps
	return pricing.CatalogFleet().WithBytesPerMbps(bpm)
}

// MixedFleetLabel names the heterogeneous strategy in HeteroRow.Strategy.
const MixedFleetLabel = "mixed fleet"

// HeteroRow is one solve of the homogeneous-vs-heterogeneous comparison:
// either the fleet restricted to a single instance type or the full mixed
// catalog, at one τ.
type HeteroRow struct {
	Tau      int64
	Strategy string // instance name, or MixedFleetLabel
	// Feasible is false when the type's capacity cannot host the hottest
	// topic, in which case the cost fields are meaningless.
	Feasible    bool
	CostUSD     float64
	VMs         int
	BandwidthGB float64
	// Mix is the deployed instance composition (single-element for
	// homogeneous rows).
	Mix string
}

// HeteroResult is the full comparison for one dataset: per τ, every
// homogeneous restriction of the calibrated catalog fleet plus the mixed
// solve — the experiment behind the heterogeneous-allocation claim that a
// mixed fleet dominates any homogeneous choice.
type HeteroResult struct {
	Dataset Dataset
	Fleet   pricing.Fleet
	Rows    []HeteroRow
}

// RunHetero solves the dataset at every τ with GSP+CBP(all opts) under (a)
// each single instance type of the calibrated catalog fleet and (b) the
// mixed fleet, and reports costs, VM counts, and fleet composition.
func RunHetero(ctx context.Context, d Dataset, scale float64) (*HeteroResult, error) {
	w, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	fleet := FleetFor(w)
	model := pricing.NewModel(pricing.C3Large) // 240 h rental, $0.12/GB
	res := &HeteroResult{Dataset: d, Fleet: fleet}

	solveWith := func(tau int64, f pricing.Fleet, strategy string) error {
		cfg := core.Config{
			Tau:          tau,
			MessageBytes: MessageBytes,
			Model:        model,
			Fleet:        f,
			Stage1:       core.Stage1Greedy,
			Stage2:       core.Stage2Custom,
			Opts:         core.OptAll,
		}
		sol, err := core.SolveContext(ctx, w, cfg)
		if errors.Is(err, core.ErrInfeasible) {
			res.Rows = append(res.Rows, HeteroRow{Tau: tau, Strategy: strategy})
			return nil
		}
		if err != nil {
			return fmt.Errorf("τ=%d %s: %w", tau, strategy, err)
		}
		res.Rows = append(res.Rows, HeteroRow{
			Tau:         tau,
			Strategy:    strategy,
			Feasible:    true,
			CostUSD:     sol.Cost(model).USD(),
			VMs:         sol.Allocation.NumVMs(),
			BandwidthGB: float64(sol.Allocation.TransferBytes(model)) / float64(pricing.GB),
			Mix:         report.FormatMix(sol.Allocation.InstanceMix()),
		})
		return nil
	}

	for _, tau := range Taus {
		for i := 0; i < fleet.Len(); i++ {
			if err := solveWith(tau, fleet.Single(i), fleet.Type(i).Name); err != nil {
				return nil, err
			}
		}
		if err := solveWith(tau, fleet, MixedFleetLabel); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// BestHomogeneous returns the cheapest feasible single-type row at τ, or
// ok=false when none is feasible.
func (r *HeteroResult) BestHomogeneous(tau int64) (HeteroRow, bool) {
	var best HeteroRow
	found := false
	for _, row := range r.Rows {
		if row.Tau != tau || row.Strategy == MixedFleetLabel || !row.Feasible {
			continue
		}
		if !found || row.CostUSD < best.CostUSD {
			best, found = row, true
		}
	}
	return best, found
}

// Mixed returns the mixed-fleet row at τ.
func (r *HeteroResult) Mixed(tau int64) (HeteroRow, bool) {
	for _, row := range r.Rows {
		if row.Tau == tau && row.Strategy == MixedFleetLabel {
			return row, row.Feasible
		}
	}
	return HeteroRow{}, false
}

// Savings reports 1 − cost(mixed)/cost(best homogeneous) at τ; zero when
// either side is missing. Non-negative by the solver's portfolio guarantee.
func (r *HeteroResult) Savings(tau int64) float64 {
	homo, ok1 := r.BestHomogeneous(tau)
	mixed, ok2 := r.Mixed(tau)
	if !ok1 || !ok2 || homo.CostUSD == 0 {
		return 0
	}
	return 1 - mixed.CostUSD/homo.CostUSD
}

// Table renders the comparison.
func (r *HeteroResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Homogeneous vs heterogeneous fleets on %s (catalog %s)", r.Dataset, r.Fleet),
		"tau", "strategy", "total cost $", "VMs", "BW GB", "mix")
	for _, row := range r.Rows {
		if !row.Feasible {
			t.AddRow(row.Tau, row.Strategy, "infeasible", "-", "-", "-")
			continue
		}
		t.AddRow(row.Tau, row.Strategy, row.CostUSD, row.VMs, row.BandwidthGB, row.Mix)
	}
	return t
}
