package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/elastic"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/spot"
	"github.com/pubsub-systems/mcss/internal/timeline"
	"github.com/pubsub-systems/mcss/internal/tracegen"
)

// Spot experiment seeds — pinned so BENCH_8.json is reproducible: the
// market seed drives the price walk, spikes, and storm placement; the
// chaos seed draws the per-VM reclamations against that market.
const (
	SpotMarketSeed = 401
	SpotChaosSeed  = 409
	// SpotChaosLagMinutes is the modeled detect-and-repair lag billed as
	// lost pair-minutes when a reclamation takes pairs down.
	SpotChaosLagMinutes = 5
)

// SpotMarketConfig is the market the chaos experiment runs under: the
// default spot trace (70% mean discount, mild volatility, one storm in
// the second half) sized to the experiment's timeline, with the baseline
// reclamation risk raised to 5%/VM/epoch so a 24-epoch day reliably
// exercises the reclaim → bill → repair path at experiment scale.
func SpotMarketConfig(epochs int, epochMinutes int64) spot.MarketConfig {
	cfg := spot.DefaultMarketConfig()
	cfg.Epochs = epochs
	cfg.EpochMinutes = epochMinutes
	cfg.BaseReclaimProb = 0.05
	cfg.Seed = SpotMarketSeed
	return cfg
}

// SpotResult compares two hysteresis controllers over the same diurnal
// timeline: one renting on-demand only, one running the risk-aware spot
// portfolio against a generated spot market with chaos-mode reclamations
// injected every epoch. Both are billed per started instance-hour by
// their own ledgers; the spot run additionally pays for reclaimed hours
// and repair churn, so SavingsVsOnDemand is the *realized* saving net of
// interruptions, not the sticker discount.
type SpotResult struct {
	Dataset  Dataset
	Tau      int64
	Timeline *timeline.Timeline
	Fleet    pricing.Fleet
	Market   *spot.Market

	OnDemand *elastic.RunReport // all-on-demand hysteresis baseline
	Spot     *elastic.RunReport // spot portfolio under chaos

	// VerifyFailures counts epochs whose post-repair allocation failed
	// core.VerifyServes against the epoch snapshot (the acceptance bar is
	// zero); VerifyErr keeps the first failure's message.
	VerifyFailures int
	VerifyErr      string
}

// RunSpot generates the dataset at the given scale, modulates it into the
// diurnal timeline, calibrates the fleet against the envelope, generates
// a spot market over that fleet, and runs the all-on-demand baseline and
// the spot portfolio (risk-aware stage 2, price schedule, chaos injector)
// over the same epochs. Every post-repair allocation is verified against
// its epoch snapshot with the run's decision fleet.
func RunSpot(ctx context.Context, d Dataset, scale float64) (*SpotResult, error) {
	base, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	tl, err := tracegen.Diurnal(base, DiurnalModulation())
	if err != nil {
		return nil, err
	}
	env, err := tl.Envelope()
	if err != nil {
		return nil, err
	}
	fleet := FleetFor(env)
	cfg := core.Config{
		Tau:          DiurnalTau,
		MessageBytes: MessageBytes,
		Model:        pricing.NewModel(pricing.C3Large),
		Fleet:        fleet,
		Stage1:       core.Stage1Greedy,
		Stage2:       core.Stage2Custom,
		Opts:         core.OptAll,
	}

	market, err := spot.GenerateMarket(fleet, SpotMarketConfig(tl.NumEpochs(), tl.EpochMinutes))
	if err != nil {
		return nil, err
	}
	sched, err := spot.NewSchedule(market, fleet, spot.ScheduleConfig{})
	if err != nil {
		return nil, err
	}
	chaos, err := spot.NewChaos(market, SpotChaosSeed)
	if err != nil {
		return nil, err
	}

	onDemand, err := elastic.NewController(cfg, elastic.DefaultPolicy()).Run(ctx, tl)
	if err != nil {
		return nil, fmt.Errorf("on-demand baseline: %w", err)
	}

	spotCfg := cfg
	strat, ok := core.StrategyByName(spot.StrategyName)
	if !ok {
		return nil, fmt.Errorf("stage-2 strategy %q not registered", spot.StrategyName)
	}
	spotCfg.Stage2Strategy = strat
	ctl := elastic.NewController(spotCfg, elastic.DefaultPolicy())
	ctl.SetFleetSchedule(sched)
	ctl.SetChaos(chaos, SpotChaosLagMinutes)
	spotRep, err := ctl.Run(ctx, tl)
	if err != nil {
		return nil, fmt.Errorf("spot portfolio: %w", err)
	}

	res := &SpotResult{
		Dataset:  d,
		Tau:      DiurnalTau,
		Timeline: tl,
		Fleet:    fleet,
		Market:   market,
		OnDemand: onDemand,
		Spot:     spotRep,
	}
	// The run's final decision fleet carries the un-derated capacities for
	// the spot variants; recorded per-VM capacities may be headroom-derated.
	verifyCfg := spotCfg
	verifyCfg.Fleet = spotRep.Fleet
	for e, alloc := range spotRep.Allocations {
		if err := core.VerifyServes(tl.Epochs[e], alloc, verifyCfg); err != nil {
			res.VerifyFailures++
			if res.VerifyErr == "" {
				res.VerifyErr = fmt.Sprintf("epoch %d: %v", e, err)
			}
		}
	}
	return res, nil
}

// SavingsVsOnDemand reports 1 − cost(spot)/cost(on-demand) — the realized
// saving of the spot portfolio net of reclaimed hours and repair churn.
func (r *SpotResult) SavingsVsOnDemand() float64 {
	od := r.OnDemand.TotalCost()
	if od == 0 {
		return 0
	}
	return 1 - float64(r.Spot.TotalCost())/float64(od)
}

// ReclaimedVMs, ReclaimGroups, RepairedPairs, LostPairMinutes, and
// RepricedEpochs sum the spot run's chaos telemetry across epochs.
func (r *SpotResult) ReclaimedVMs() int {
	return sumEpochs(r, func(e elastic.EpochReport) int { return e.ReclaimedVMs })
}
func (r *SpotResult) ReclaimGroups() int {
	return sumEpochs(r, func(e elastic.EpochReport) int { return e.ReclaimGroups })
}
func (r *SpotResult) RepairedPairs() int64 {
	return sumEpochs64(r, func(e elastic.EpochReport) int64 { return e.RepairedPairs })
}
func (r *SpotResult) LostPairMinutes() int64 {
	return sumEpochs64(r, func(e elastic.EpochReport) int64 { return e.LostPairMinutes })
}
func (r *SpotResult) RepricedEpochs() int {
	return sumEpochs(r, func(e elastic.EpochReport) int {
		if e.Repriced {
			return 1
		}
		return 0
	})
}

func sumEpochs(r *SpotResult, f func(elastic.EpochReport) int) int {
	var sum int
	for _, e := range r.Spot.Epochs {
		sum += f(e)
	}
	return sum
}

func sumEpochs64(r *SpotResult, f func(elastic.EpochReport) int64) int64 {
	var sum int64
	for _, e := range r.Spot.Epochs {
		sum += f(e)
	}
	return sum
}

// spotVMs counts an epoch's active spot VMs from its instance mix.
func spotVMs(e elastic.EpochReport) int {
	var n int
	for name, c := range e.ActiveMix {
		if spot.IsSpot(name) {
			n += c
		}
	}
	return n
}

// SummaryTable renders the two strategies' realized bills side by side.
func (r *SpotResult) SummaryTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Spot portfolio vs on-demand on %s (τ=%d, %d epochs × %d min, %d AZs)",
			r.Dataset, r.Tau, r.Timeline.NumEpochs(), r.Timeline.EpochMinutes, r.Market.NumAZs),
		"strategy", "total $", "rental $", "transfer $", "started VM-h", "peak VMs", "reclaims", "lost pair-min")
	t.AddRow("on-demand",
		r.OnDemand.TotalCost().USD(), r.OnDemand.RentalCost().USD(), r.OnDemand.TransferCost().USD(),
		r.OnDemand.Ledger.StartedHours(), r.OnDemand.MaxBilledVMs(), 0, 0)
	t.AddRow("spot-portfolio",
		r.Spot.TotalCost().USD(), r.Spot.RentalCost().USD(), r.Spot.TransferCost().USD(),
		r.Spot.Ledger.StartedHours(), r.Spot.MaxBilledVMs(), r.ReclaimedVMs(), r.LostPairMinutes())
	return t
}

// EpochTable renders the spot run's per-epoch chaos trajectory.
func (r *SpotResult) EpochTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Chaos epochs on %s (market seed %d, chaos seed %d)",
			r.Dataset, SpotMarketSeed, SpotChaosSeed),
		"epoch", "repriced", "active", "spot VMs", "billed", "groups", "reclaimed", "repaired", "new VMs", "lost pair-min", "util")
	for _, e := range r.Spot.Epochs {
		t.AddRow(e.Epoch, e.Repriced, e.ActiveVMs, spotVMs(e), e.BilledVMs,
			e.ReclaimGroups, e.ReclaimedVMs, e.RepairedPairs, e.RepairNewVMs,
			e.LostPairMinutes, fmt.Sprintf("%.2f", e.Utilization))
	}
	return t
}

// SpotBenchRow is one epoch of the machine-readable chaos trace.
type SpotBenchRow struct {
	Epoch           int     `json:"epoch"`
	Repriced        bool    `json:"repriced"`
	ActiveVMs       int     `json:"active_vms"`
	SpotVMs         int     `json:"spot_vms"`
	BilledVMs       int     `json:"billed_vms"`
	ReclaimGroups   int     `json:"reclaim_groups"`
	ReclaimedVMs    int     `json:"reclaimed_vms"`
	RepairedPairs   int64   `json:"repaired_pairs"`
	RepairNewVMs    int     `json:"repair_new_vms"`
	LostPairMinutes int64   `json:"lost_pair_minutes"`
	Utilization     float64 `json:"utilization"`
}

// SpotBenchSummary is the headline block of BENCH_8.json.
type SpotBenchSummary struct {
	// OnDemandUSD and SpotUSD are the two runs' realized totals;
	// SavingsFrac is 1 − spot/on-demand (the ≥0.20 acceptance bar).
	OnDemandUSD float64 `json:"on_demand_usd"`
	SpotUSD     float64 `json:"spot_usd"`
	SavingsFrac float64 `json:"savings_frac"`
	// Chaos totals across the run.
	ReclaimedVMs    int   `json:"reclaimed_vms"`
	ReclaimGroups   int   `json:"reclaim_groups"`
	RepairedPairs   int64 `json:"repaired_pairs"`
	LostPairMinutes int64 `json:"lost_pair_minutes"`
	RepricedEpochs  int   `json:"repriced_epochs"`
	// AllVerified records that every post-repair allocation passed
	// VerifyServes against its epoch snapshot.
	AllVerified    bool   `json:"all_verified"`
	VerifyFailures int    `json:"verify_failures"`
	VerifyErr      string `json:"verify_err,omitempty"`
}

// SpotBench is the machine-readable experiment output (BENCH_8.json).
type SpotBench struct {
	Bench        string           `json:"bench"`
	Dataset      string           `json:"dataset"`
	Tau          int64            `json:"tau"`
	Epochs       int              `json:"epochs"`
	EpochMinutes int64            `json:"epoch_minutes"`
	NumAZs       int              `json:"num_azs"`
	MarketSeed   int64            `json:"market_seed"`
	ChaosSeed    int64            `json:"chaos_seed"`
	Summary      SpotBenchSummary `json:"summary"`
	Rows         []SpotBenchRow   `json:"rows"`
}

// Bench flattens the result into the BENCH_8.json shape.
func (r *SpotResult) Bench() *SpotBench {
	b := &SpotBench{
		Bench:        "spot-chaos",
		Dataset:      r.Dataset.String(),
		Tau:          r.Tau,
		Epochs:       r.Timeline.NumEpochs(),
		EpochMinutes: r.Timeline.EpochMinutes,
		NumAZs:       r.Market.NumAZs,
		MarketSeed:   SpotMarketSeed,
		ChaosSeed:    SpotChaosSeed,
		Summary: SpotBenchSummary{
			OnDemandUSD:     r.OnDemand.TotalCost().USD(),
			SpotUSD:         r.Spot.TotalCost().USD(),
			SavingsFrac:     r.SavingsVsOnDemand(),
			ReclaimedVMs:    r.ReclaimedVMs(),
			ReclaimGroups:   r.ReclaimGroups(),
			RepairedPairs:   r.RepairedPairs(),
			LostPairMinutes: r.LostPairMinutes(),
			RepricedEpochs:  r.RepricedEpochs(),
			AllVerified:     r.VerifyFailures == 0,
			VerifyFailures:  r.VerifyFailures,
			VerifyErr:       r.VerifyErr,
		},
	}
	for _, e := range r.Spot.Epochs {
		b.Rows = append(b.Rows, SpotBenchRow{
			Epoch:           e.Epoch,
			Repriced:        e.Repriced,
			ActiveVMs:       e.ActiveVMs,
			SpotVMs:         spotVMs(e),
			BilledVMs:       e.BilledVMs,
			ReclaimGroups:   e.ReclaimGroups,
			ReclaimedVMs:    e.ReclaimedVMs,
			RepairedPairs:   e.RepairedPairs,
			RepairNewVMs:    e.RepairNewVMs,
			LostPairMinutes: e.LostPairMinutes,
			Utilization:     e.Utilization,
		})
	}
	return b
}

// WriteJSON emits the experiment in the BENCH_8.json format.
func (b *SpotBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
