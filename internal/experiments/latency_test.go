package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestRunLatencyShort drives the full Pareto sweep at CI scale and asserts
// the experiment's two contracts: loosening the latency ceiling never
// raises the total (rental + egress) hourly cost, and the single-region
// degenerate solve is structurally identical to the paper-faithful
// GSP+CBP solve.
func TestRunLatencyShort(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep timing run")
	}
	res, err := RunLatency(context.Background(), Twitter, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Points), len(LatencyCeilings()); got != want {
		t.Fatalf("%d frontier points, want %d", got, want)
	}
	if !res.Monotone() {
		t.Fatalf("frontier is not monotone: %+v", res.Points)
	}
	if !res.DegenerateExact {
		t.Fatalf("degenerate single-region solve diverged: %s", res.DegenerateDiff)
	}
	for _, p := range res.Points {
		if p.VMs <= 0 || p.TotalUSDPerHour <= 0 {
			t.Fatalf("degenerate frontier point %+v", p)
		}
		if p.Violations != 0 {
			t.Fatalf("SLO %dms: %d violations in an accepted placement", p.SLOMillis, p.Violations)
		}
		if p.SLOMillis > 0 && p.P99Millis > p.SLOMillis {
			t.Fatalf("SLO %dms: modeled p99 %dms exceeds the ceiling", p.SLOMillis, p.P99Millis)
		}
		if p.EgressUSDPerHour < 0 || p.EgressShare < 0 {
			t.Fatalf("negative egress accounting: %+v", p)
		}
	}

	bench := res.Bench()
	if bench.Bench != "latency-frontier" || len(bench.Rows) != len(res.Points) {
		t.Fatalf("bench shape: %+v", bench)
	}
	if !bench.Summary.Monotone || !bench.Summary.DegenerateExact {
		t.Fatalf("bench summary lost the contract flags: %+v", bench.Summary)
	}
	if bench.Summary.TightLooseRatio < 1 {
		t.Fatalf("tight/loose ratio %.3f < 1: tightening the ceiling cannot cut cost",
			bench.Summary.TightLooseRatio)
	}
	var buf bytes.Buffer
	if err := bench.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back LatencyBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_9 document does not round-trip: %v", err)
	}
	if back.Summary != bench.Summary || len(back.Rows) != len(bench.Rows) {
		t.Fatal("BENCH_9 round trip changed the document")
	}
}
