package experiments

import (
	"context"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
)

// Stage1Savings reports 1 − cost(GSP+FFBP)/cost(RSP+FFBP) for the given τ —
// the paper's §IV-C Stage-1 comparison.
func (r *LadderResult) Stage1Savings(tau int64) float64 {
	var naive, gsp float64
	for _, row := range r.Rows {
		if row.Tau != tau {
			continue
		}
		switch row.Rung {
		case "RSP+FFBP":
			naive = row.CostUSD
		case "(a) GSP+FFBP":
			gsp = row.CostUSD
		}
	}
	if naive == 0 {
		return 0
	}
	return 1 - gsp/naive
}

// paperStage1Savings records the §IV-C reductions the paper reports for
// GSP vs RSP (both with FFBP), keyed by dataset, instance link speed, and τ.
var paperStage1Savings = map[Dataset]map[int64]map[int64]float64{
	Spotify: {
		64:  {10: 0.33, 100: 0.276, 1000: 0.109},
		128: {10: 0.327, 100: 0.176, 1000: 0.108},
	},
	Twitter: {
		64:  {10: 0.71, 100: 0.514, 1000: 0.291},
		128: {10: 0.70, 100: 0.519, 1000: 0.203},
	},
}

// paperFullSavings records the §IV-F headline total savings of the complete
// solution (GSP+CBP, all optimizations) vs the naive baseline.
var paperFullSavings = map[Dataset]float64{
	Spotify: 0.38,
	Twitter: 0.74,
}

// SummaryRow pairs one measured data point with the paper's reported value.
type SummaryRow struct {
	Dataset     Dataset
	Instance    string
	Tau         int64
	PaperStage1 float64 // paper's GSP-vs-RSP saving
	MeasStage1  float64
	MeasFull    float64 // full ladder vs naive
	OverLB      float64 // full cost over lower bound
}

// Summary runs all four ladder panels and compares the measured savings
// against the paper's reported numbers — the data behind EXPERIMENTS.md.
type Summary struct {
	Rows []SummaryRow
	// MaxFullSavings per dataset (across τ and instances), to compare with
	// the paper's "up to 74%/38%" claims.
	MaxFullSavings map[Dataset]float64
	// Panels retains the underlying ladders for rendering.
	Panels []*LadderResult
}

// RunSummary executes the four panels of Figs. 2–3 at the given scale.
func RunSummary(ctx context.Context, scale float64) (*Summary, error) {
	s := &Summary{MaxFullSavings: map[Dataset]float64{}}
	for _, d := range []Dataset{Spotify, Twitter} {
		for _, inst := range []pricing.InstanceType{pricing.C3Large, pricing.C3XLarge} {
			panel, err := RunLadder(ctx, d, inst, scale)
			if err != nil {
				return nil, err
			}
			s.Panels = append(s.Panels, panel)
			for _, tau := range Taus {
				full := panel.Savings(tau)
				if full > s.MaxFullSavings[d] {
					s.MaxFullSavings[d] = full
				}
				s.Rows = append(s.Rows, SummaryRow{
					Dataset:     d,
					Instance:    inst.Name,
					Tau:         tau,
					PaperStage1: paperStage1Savings[d][inst.LinkMbps][tau],
					MeasStage1:  panel.Stage1Savings(tau),
					MeasFull:    full,
					OverLB:      panel.OverLowerBound(tau),
				})
			}
		}
	}
	return s, nil
}

// PaperFullSavings exposes the paper's headline numbers for comparison.
func PaperFullSavings(d Dataset) float64 { return paperFullSavings[d] }

// Table renders the paper-vs-measured comparison.
func (s *Summary) Table() *report.Table {
	t := report.NewTable("Paper vs measured savings (GSP-vs-RSP = Stage 1 only; full = all optimizations)",
		"dataset", "instance", "tau", "paper stage1", "meas stage1", "meas full", "over LB")
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	for _, row := range s.Rows {
		t.AddRow(row.Dataset.String(), row.Instance, row.Tau,
			pct(row.PaperStage1), pct(row.MeasStage1), pct(row.MeasFull), pct(row.OverLB))
	}
	return t
}
