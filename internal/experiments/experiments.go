// Package experiments regenerates every figure of the MCSS paper's
// evaluation (§IV and Appendix D) on the synthetic Spotify-like and
// Twitter-like traces:
//
//	Fig. 2a/2b — optimization ladder on Spotify (c3.large / c3.xlarge)
//	Fig. 3a/3b — optimization ladder on Twitter  (c3.large / c3.xlarge)
//	Fig. 4/5   — Stage-1 runtime (GSP vs RSP) on Spotify / Twitter
//	Fig. 6/7   — Stage-2 runtime (CBP vs FFBP) on Spotify / Twitter
//	Fig. 8–12  — Twitter trace analysis (CCDFs and dependency series)
//
// Each driver returns structured results plus report.Table renderings, so
// the same code backs the unit tests, the benchmarks in bench_test.go, and
// the cmd/experiments binary. EXPERIMENTS.md records the paper-vs-measured
// comparison produced by the Summary driver.
package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/stats"
	"github.com/pubsub-systems/mcss/internal/tracegen"
	"github.com/pubsub-systems/mcss/internal/workload"
)

// Dataset selects one of the two synthetic traces.
type Dataset int

const (
	// Spotify is the Spotify-like trace (small interest sets, log-normal
	// playback rates).
	Spotify Dataset = iota
	// Twitter is the Twitter-like trace (power-law follows, rate–
	// popularity coupling, celebrity damping).
	Twitter
)

// String implements fmt.Stringer.
func (d Dataset) String() string {
	if d == Spotify {
		return "spotify"
	}
	return "twitter"
}

// MessageBytes is the notification size both traces use (the paper sets
// 200 B for Twitter and normalizes Spotify to the same value).
const MessageBytes = 200

// Taus are the satisfaction thresholds the paper sweeps.
var Taus = []int64{10, 100, 1000}

// Generate materializes the dataset at the given scale (1.0 = the default
// experiment size, which solves in seconds on a laptop).
func Generate(d Dataset, scale float64) (*workload.Workload, error) {
	switch d {
	case Spotify:
		return tracegen.Spotify(tracegen.DefaultSpotifyConfig().Scale(scale))
	case Twitter:
		return tracegen.Twitter(tracegen.DefaultTwitterConfig().Scale(scale))
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %d", d)
	}
}

// targetFleet is the approximate c3.large fleet size at τ=100 the effective
// capacity is calibrated to, mirroring the paper's many-VM operating regime
// (its Figs. 2–3 report tens to hundreds of VMs, growing with τ). See
// DESIGN.md §3 for why the paper's literal mbps capacities cannot reproduce
// its own VM counts.
const targetFleet = 40

// ModelFor builds the pricing model for an instance type with the effective
// capacity calibrated to the workload: BC is proportional to the instance's
// link speed (so c3.xlarge has exactly twice c3.large's capacity, as in the
// paper) and sized so the GSP selection at τ=100 occupies ~targetFleet
// c3.large VMs — which puts τ=10 runs at a handful of VMs and τ=1000 runs
// in the hundreds, the paper's regime. The honest mbps-derived capacity can
// be selected by setting the returned model's CapacityOverrideBytesPerHour
// to zero.
func ModelFor(instance pricing.InstanceType, w *workload.Workload) pricing.Model {
	m := pricing.NewModel(instance) // 240 h rental, $0.12/GB
	midSelection := core.GreedySelectPairs(w, 100)
	base := midSelection.OutgoingRate() * MessageBytes / targetFleet
	var maxRate int64
	for t := 0; t < w.NumTopics(); t++ {
		if r := w.Rate(workload.TopicID(t)); r > maxRate {
			maxRate = r
		}
	}
	feasible := 2 * maxRate * MessageBytes
	if base < feasible {
		base = feasible
	}
	m.CapacityOverrideBytesPerHour = base * instance.LinkMbps / pricing.C3Large.LinkMbps
	return m
}

// Rung is one bar group of the paper's Figs. 2–3 ladder.
type Rung struct {
	// Name matches the paper's legend.
	Name   string
	Stage1 core.Stage1Algo
	Stage2 core.Stage2Algo
	Opts   core.OptFlags
}

// Ladder returns the paper's six configurations in presentation order:
// the naive baseline, then GSP with incrementally enabled Stage-2
// optimizations (a)–(e).
func Ladder() []Rung {
	return []Rung{
		{Name: "RSP+FFBP", Stage1: core.Stage1Random, Stage2: core.Stage2FirstFit},
		{Name: "(a) GSP+FFBP", Stage1: core.Stage1Greedy, Stage2: core.Stage2FirstFit},
		{Name: "(b) +group topics", Stage1: core.Stage1Greedy, Stage2: core.Stage2Custom},
		{Name: "(c) +expensive first", Stage1: core.Stage1Greedy, Stage2: core.Stage2Custom, Opts: core.OptExpensiveTopicFirst},
		{Name: "(d) +most-free VM", Stage1: core.Stage1Greedy, Stage2: core.Stage2Custom, Opts: core.OptExpensiveTopicFirst | core.OptMostFreeVM},
		{Name: "(e) +cost decision", Stage1: core.Stage1Greedy, Stage2: core.Stage2Custom, Opts: core.OptAll},
	}
}

// LadderRow is one measured bar: a rung (or the lower bound) at one τ.
type LadderRow struct {
	Tau         int64
	Rung        string
	CostUSD     float64
	VMs         int
	BandwidthGB float64
	Stage1Time  time.Duration
	Stage2Time  time.Duration
}

// LadderResult is a full Fig. 2/3 panel: every rung at every τ plus the
// lower bound, for one dataset and instance type.
type LadderResult struct {
	Dataset  Dataset
	Instance pricing.InstanceType
	Rows     []LadderRow
}

// RunLadder reproduces one panel of Figs. 2–3.
func RunLadder(ctx context.Context, d Dataset, instance pricing.InstanceType, scale float64) (*LadderResult, error) {
	w, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	model := ModelFor(instance, w)
	res := &LadderResult{Dataset: d, Instance: instance}
	for _, tau := range Taus {
		for _, rung := range Ladder() {
			cfg := core.Config{
				Tau:          tau,
				MessageBytes: MessageBytes,
				Model:        model,
				Stage1:       rung.Stage1,
				Stage2:       rung.Stage2,
				Opts:         rung.Opts,
			}
			sol, err := core.SolveContext(ctx, w, cfg)
			if err != nil {
				return nil, fmt.Errorf("τ=%d %s: %w", tau, rung.Name, err)
			}
			res.Rows = append(res.Rows, LadderRow{
				Tau:         tau,
				Rung:        rung.Name,
				CostUSD:     sol.Cost(model).USD(),
				VMs:         sol.Allocation.NumVMs(),
				BandwidthGB: float64(sol.Allocation.TransferBytes(model)) / float64(pricing.GB),
				Stage1Time:  sol.Stage1Time,
				Stage2Time:  sol.Stage2Time,
			})
		}
		lb, err := core.LowerBoundContext(ctx, w, core.Config{Tau: tau, MessageBytes: MessageBytes, Model: model})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LadderRow{
			Tau:         tau,
			Rung:        "Lower Bound",
			CostUSD:     lb.Cost.USD(),
			VMs:         lb.VMs,
			BandwidthGB: float64(model.TransferBytes(lb.OutBytesPerHour)) / float64(pricing.GB),
		})
	}
	return res, nil
}

// Table renders the panel in the paper's three-metric layout.
func (r *LadderResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Cost metrics for %s data with %s (BC scaled from %d mbps)",
			r.Dataset, r.Instance.Name, r.Instance.LinkMbps),
		"tau", "config", "total cost $", "VMs", "BW GB")
	for _, row := range r.Rows {
		t.AddRow(row.Tau, row.Rung, row.CostUSD, row.VMs, row.BandwidthGB)
	}
	return t
}

// Savings reports 1 − cost(last rung)/cost(first rung) for the given τ —
// the headline "up to 74% / 38%" metric.
func (r *LadderResult) Savings(tau int64) float64 {
	var naive, full float64
	for _, row := range r.Rows {
		if row.Tau != tau {
			continue
		}
		switch row.Rung {
		case "RSP+FFBP":
			naive = row.CostUSD
		case "(e) +cost decision":
			full = row.CostUSD
		}
	}
	if naive == 0 {
		return 0
	}
	return 1 - full/naive
}

// OverLowerBound reports cost(full)/cost(lower bound) − 1 for the given τ.
func (r *LadderResult) OverLowerBound(tau int64) float64 {
	var full, lb float64
	for _, row := range r.Rows {
		if row.Tau != tau {
			continue
		}
		switch row.Rung {
		case "(e) +cost decision":
			full = row.CostUSD
		case "Lower Bound":
			lb = row.CostUSD
		}
	}
	if lb == 0 {
		return 0
	}
	return full/lb - 1
}

// Stage1Runtime is one bar pair of Figs. 4–5.
type Stage1Runtime struct {
	Tau    int64
	Greedy time.Duration
	Random time.Duration
}

// RunStage1Runtime reproduces Fig. 4 (Spotify) / Fig. 5 (Twitter).
func RunStage1Runtime(ctx context.Context, d Dataset, scale float64) ([]Stage1Runtime, error) {
	w, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	var out []Stage1Runtime
	for _, tau := range Taus {
		r := Stage1Runtime{Tau: tau}
		start := time.Now()
		gsp, err := core.GreedySelectPairsContext(ctx, w, core.Config{Tau: tau})
		if err != nil {
			return nil, err
		}
		r.Greedy = time.Since(start)
		start = time.Now()
		rsp, err := core.RandomSelectPairsContext(ctx, w, core.Config{Tau: tau})
		if err != nil {
			return nil, err
		}
		r.Random = time.Since(start)
		if !gsp.Satisfied(tau) || !rsp.Satisfied(tau) {
			return nil, fmt.Errorf("experiments: stage 1 produced unsatisfying selection at τ=%d", tau)
		}
		out = append(out, r)
	}
	return out, nil
}

// Stage2Runtime is one bar pair of Figs. 6–7.
type Stage2Runtime struct {
	Tau      int64
	Custom   time.Duration
	FirstFit time.Duration
}

// RunStage2Runtime reproduces Fig. 6 (Spotify) / Fig. 7 (Twitter): both
// packers consume the same GSP selection, as in the paper.
func RunStage2Runtime(ctx context.Context, d Dataset, instance pricing.InstanceType, scale float64) ([]Stage2Runtime, error) {
	w, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	model := ModelFor(instance, w)
	var out []Stage2Runtime
	for _, tau := range Taus {
		sel, err := core.GreedySelectPairsContext(ctx, w, core.Config{Tau: tau})
		if err != nil {
			return nil, err
		}
		cfgC := core.Config{Tau: tau, MessageBytes: MessageBytes, Model: model, Opts: core.OptAll}
		cfgF := core.Config{Tau: tau, MessageBytes: MessageBytes, Model: model}

		r := Stage2Runtime{Tau: tau}
		start := time.Now()
		if _, err := core.CustomBinPackingContext(ctx, sel, cfgC); err != nil {
			return nil, err
		}
		r.Custom = time.Since(start)
		start = time.Now()
		if _, err := core.FFBinPackingContext(ctx, sel, cfgF); err != nil {
			return nil, err
		}
		r.FirstFit = time.Since(start)
		out = append(out, r)
	}
	return out, nil
}

// RuntimeTable renders Figs. 4–7 rows.
func RuntimeTable(title, aName, bName string, taus []int64, a, b []time.Duration) *report.Table {
	t := report.NewTable(title, "tau", aName, bName, "ratio")
	for i := range taus {
		ratio := float64(b[i]) / float64(a[i])
		t.AddRow(taus[i], a[i].Round(time.Microsecond).String(), b[i].Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", ratio))
	}
	return t
}

// TraceAnalysis bundles the Appendix-D figures (8–12) for the Twitter-like
// trace.
type TraceAnalysis struct {
	// FollowersCCDF and FollowingsCCDF are Fig. 8's two curves.
	FollowersCCDF, FollowingsCCDF []stats.Point
	// EventRateCCDF is Fig. 9.
	EventRateCCDF []stats.Point
	// RateVsFollowers is Fig. 10 (mean event rate per follower count,
	// log-bucketed).
	RateVsFollowers []stats.Point
	// SCCCDF is Fig. 11 (CCDF of subscription cardinality).
	SCCCDF []stats.Point
	// SCVsFollowings is Fig. 12 (mean SC per followings count,
	// log-bucketed).
	SCVsFollowings []stats.Point
}

// RunTraceAnalysis reproduces Figs. 8–12 from the Twitter-like trace.
func RunTraceAnalysis(ctx context.Context, scale float64) (*TraceAnalysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w, err := Generate(Twitter, scale)
	if err != nil {
		return nil, err
	}
	numT, numV := w.NumTopics(), w.NumSubscribers()

	followers := make([]int64, numT)
	rates := make([]float64, numT)
	rateKeys := make([]int64, numT)
	rateVals := make([]float64, numT)
	for t := 0; t < numT; t++ {
		followers[t] = int64(w.Followers(workload.TopicID(t)))
		rates[t] = float64(w.Rate(workload.TopicID(t)))
		rateKeys[t] = followers[t]
		rateVals[t] = rates[t]
	}
	followings := make([]int64, numV)
	scs := make([]float64, numV)
	for v := 0; v < numV; v++ {
		followings[v] = int64(w.Followings(workload.SubID(v)))
		scs[v] = w.SubscriptionCardinality(workload.SubID(v))
	}

	return &TraceAnalysis{
		FollowersCCDF:   stats.CCDFInt(followers),
		FollowingsCCDF:  stats.CCDFInt(followings),
		EventRateCCDF:   stats.CCDF(rates),
		RateVsFollowers: stats.LogBucketMean(rateKeys, rateVals, 2),
		SCCCDF:          stats.CCDF(scs),
		SCVsFollowings:  stats.LogBucketMean(followings, scs, 2),
	}, nil
}
