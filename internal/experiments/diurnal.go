package experiments

import (
	"context"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/elastic"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/timeline"
	"github.com/pubsub-systems/mcss/internal/tracegen"
)

// DiurnalTau is the satisfaction threshold the diurnal comparison runs at —
// the paper's middle τ, where fleets are large enough to have room to both
// scale down and churn.
const DiurnalTau = 100

// DiurnalModulation returns the daily cycle the diurnal experiment applies
// to a dataset's base trace: the default Twitter-like curve plus a 3× flash
// crowd on the three hottest topics at 05:00, right in the trough — the
// event a static peak-provisioner pays for all day and an elastic
// controller absorbs for one epoch.
func DiurnalModulation() tracegen.DiurnalConfig {
	cfg := tracegen.DefaultDiurnalConfig()
	cfg.FlashEpoch = 5
	cfg.FlashTopics = 3
	cfg.FlashFactor = 3
	return cfg
}

// DiurnalResult is the full three-strategy comparison over one diurnal
// timeline: static peak provisioning, the per-epoch oracle, and the
// hysteresis controller, all billed per started instance-hour by the same
// ledger.
type DiurnalResult struct {
	Dataset    Dataset
	Tau        int64
	Modulation tracegen.DiurnalConfig
	Timeline   *timeline.Timeline
	Fleet      pricing.Fleet

	Static     *elastic.RunReport
	Oracle     *elastic.RunReport
	Hysteresis *elastic.RunReport
}

// RunDiurnal generates the dataset at the given scale, modulates it into a
// 24-epoch diurnal timeline, calibrates the fleet against the timeline's
// envelope (so the flash crowd stays feasible), and runs the three
// strategies.
func RunDiurnal(ctx context.Context, d Dataset, scale float64) (*DiurnalResult, error) {
	base, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	mod := DiurnalModulation()
	tl, err := tracegen.Diurnal(base, mod)
	if err != nil {
		return nil, err
	}
	env, err := tl.Envelope()
	if err != nil {
		return nil, err
	}
	fleet := FleetFor(env)
	cfg := core.Config{
		Tau:          DiurnalTau,
		MessageBytes: MessageBytes,
		Model:        pricing.NewModel(pricing.C3Large), // 240 h rental, $0.12/GB
		Fleet:        fleet,
		Stage1:       core.Stage1Greedy,
		Stage2:       core.Stage2Custom,
		Opts:         core.OptAll,
	}

	oracle, err := elastic.NewController(cfg, elastic.OraclePolicy()).Run(ctx, tl)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	hysteresis, err := elastic.NewController(cfg, elastic.DefaultPolicy()).Run(ctx, tl)
	if err != nil {
		return nil, fmt.Errorf("hysteresis: %w", err)
	}
	static, err := elastic.StaticPeakReport(tl, oracle)
	if err != nil {
		return nil, fmt.Errorf("static-peak: %w", err)
	}
	return &DiurnalResult{
		Dataset:    d,
		Tau:        DiurnalTau,
		Modulation: mod,
		Timeline:   tl,
		Fleet:      fleet,
		Static:     static,
		Oracle:     oracle,
		Hysteresis: hysteresis,
	}, nil
}

// SavingsVsStatic reports 1 − cost(hysteresis)/cost(static peak) — the
// headline elastic saving.
func (r *DiurnalResult) SavingsVsStatic() float64 {
	s := r.Static.TotalCost()
	if s == 0 {
		return 0
	}
	return 1 - float64(r.Hysteresis.TotalCost())/float64(s)
}

// OverOracle reports cost(hysteresis)/cost(oracle) − 1 — the price of not
// being clairvoyant.
func (r *DiurnalResult) OverOracle() float64 {
	o := r.Oracle.TotalCost()
	if o == 0 {
		return 0
	}
	return float64(r.Hysteresis.TotalCost())/float64(o) - 1
}

// SummaryTable renders the three strategies' bills.
func (r *DiurnalResult) SummaryTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Diurnal autoscaling on %s (τ=%d, %d epochs × %d min, fleet %s)",
			r.Dataset, r.Tau, r.Timeline.NumEpochs(), r.Timeline.EpochMinutes, r.Fleet),
		"strategy", "total $", "rental $", "transfer $", "started VM-h", "peak VMs", "moved pairs")
	for _, rep := range []*elastic.RunReport{r.Static, r.Oracle, r.Hysteresis} {
		t.AddRow(rep.Strategy,
			rep.TotalCost().USD(), rep.RentalCost().USD(), rep.TransferCost().USD(),
			rep.Ledger.StartedHours(), rep.MaxBilledVMs(), rep.TotalMoved())
	}
	return t
}

// EpochTable renders the per-epoch fleet trajectories of the three
// strategies against the activity curve.
func (r *DiurnalResult) EpochTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Per-epoch fleets on %s (activity curve peak %.0fh, trough ratio %.2f)",
			r.Dataset, r.Modulation.PeakHour, r.Modulation.TroughRatio),
		"epoch", "activity", "static VMs", "oracle VMs", "hyst active", "hyst billed", "hyst moved", "hyst added", "hyst util")
	for e := 0; e < r.Timeline.NumEpochs(); e++ {
		hourOfDay := float64(r.Timeline.StartMinute(e)) / 60
		h := r.Hysteresis.Epochs[e]
		t.AddRow(e,
			fmt.Sprintf("%.2f", r.Modulation.Activity(hourOfDay)),
			r.Static.Epochs[e].BilledVMs,
			r.Oracle.Epochs[e].BilledVMs,
			h.ActiveVMs, h.BilledVMs, h.PairsMoved, h.AddedPairs,
			fmt.Sprintf("%.2f", h.Utilization))
	}
	return t
}
