package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/topo"
	"github.com/pubsub-systems/mcss/internal/tracegen"
)

// Latency experiment constants — pinned so BENCH_9.json is reproducible.
const (
	// LatencyRegions is the synthetic topology's region count.
	LatencyRegions = 3
	// LatencyRegionSeed draws the workload's zipf-skewed geography.
	LatencyRegionSeed = 503
	// LatencyTau is the satisfaction threshold of every latency solve.
	LatencyTau = 100
)

// LatencyCeilings is the SLO sweep, tightest first, with 0 (no ceiling) as
// the loosest point. Under the synthetic 3-region topology (cross-region
// RTT 45/60 ms) the modeled pair RTT through the best broker region never
// exceeds 60 ms, so the tightest ceiling is feasible by construction and
// each looser ceiling only enlarges the feasible broker set.
func LatencyCeilings() []int64 { return []int64{60, 75, 90, 120, 0} }

// LatencyPoint is one point of the cost-vs-latency-ceiling frontier.
type LatencyPoint struct {
	SLOMillis int64 // 0 = no ceiling
	// RentalUSDPerHour and EgressUSDPerHour split the point's hourly bill;
	// TotalUSDPerHour is their sum (the Pareto objective).
	RentalUSDPerHour float64
	EgressUSDPerHour float64
	TotalUSDPerHour  float64
	EgressShare      float64 // egress / total
	// P99Millis and MaxMillis summarize the modeled delivery RTT
	// distribution across placed pairs; Violations is the count above the
	// ceiling (0 for every accepted point).
	P99Millis  int64
	MaxMillis  int64
	Violations int64
	VMs        int
	// Reused marks a point that kept the tighter ceiling's allocation
	// because the fresh solve came out more expensive (warm-start
	// dominance: a placement feasible under a tight ceiling stays feasible
	// under every looser one, so the frontier is monotone by construction
	// and Reused records where the greedy solve was non-monotone).
	Reused bool
}

// LatencyResult is the full latency experiment: the Pareto frontier over
// the SLO ceilings plus the degenerate single-region equivalence check.
type LatencyResult struct {
	Dataset  Dataset
	Tau      int64
	Regions  int
	Topology *topo.Topology
	Points   []LatencyPoint

	// DegenerateExact records that the topo strategies under a one-region
	// topology produced an allocation byte-identical to the paper-faithful
	// gsp+cbp solve on the same workload and config.
	DegenerateExact bool
	// DegenerateDiff holds the first difference when DegenerateExact is
	// false.
	DegenerateDiff string
}

// RunLatency generates the dataset, tags its endpoints across the
// synthetic multi-region topology, and sweeps the latency SLO ceiling from
// tightest to loosest, solving each point with the region-aware strategies
// and pricing it as hourly rental plus cross-region egress. Warm-start
// dominance keeps the cheaper of the fresh solve and the previous (tighter)
// point's allocation, so the reported frontier is monotone non-increasing
// in cost. It also runs the degenerate single-region case and checks the
// topo strategies reproduce the paper-faithful solve exactly. With short,
// the workload scale is capped for CI smoke runs.
func RunLatency(ctx context.Context, d Dataset, scale float64, short bool) (*LatencyResult, error) {
	if short && scale > 0.1 {
		scale = 0.1
	}
	base, err := Generate(d, scale)
	if err != nil {
		return nil, err
	}
	w, err := tracegen.TagRegions(base, LatencyRegions, LatencyRegionSeed)
	if err != nil {
		return nil, err
	}
	model := ModelFor(pricing.C3Large, w)
	t := topo.SyntheticTopology(LatencyRegions)
	fleet, err := topo.RegionalFleet(model.SingleFleet(), t)
	if err != nil {
		return nil, err
	}
	s1, ok := core.StrategyByName(topo.Stage1Name)
	if !ok {
		return nil, fmt.Errorf("stage-1 strategy %q not registered", topo.Stage1Name)
	}
	s2, ok := core.StrategyByName(topo.Stage2Name)
	if !ok {
		return nil, fmt.Errorf("stage-2 strategy %q not registered", topo.Stage2Name)
	}

	res := &LatencyResult{Dataset: d, Tau: LatencyTau, Regions: LatencyRegions, Topology: t}

	// The frontier, tightest ceiling first. Each point keeps the cheaper
	// of its fresh solve and the previous point's allocation.
	var best *core.Allocation
	var bestTotal pricing.MicroUSD
	for _, slo := range LatencyCeilings() {
		cfg := core.Config{
			Tau:              LatencyTau,
			MessageBytes:     MessageBytes,
			Model:            model,
			Fleet:            fleet,
			Stage1Strategy:   s1,
			Stage2Strategy:   s2,
			Topology:         t,
			LatencySLOMillis: slo,
			Opts:             core.OptAll,
		}
		sol, err := core.SolveContext(ctx, w, cfg)
		if err != nil {
			return nil, fmt.Errorf("slo=%dms: %w", slo, err)
		}
		alloc := sol.Allocation
		_, egress := core.EgressPerHour(t, w, alloc, MessageBytes)
		total := alloc.HourlyRentalRate(model).Add(egress)
		reused := false
		if best != nil && bestTotal < total {
			// The tighter ceiling's placement is feasible here too and
			// cheaper — keep it.
			alloc, total, reused = best, bestTotal, true
			_, egress = core.EgressPerHour(t, w, alloc, MessageBytes)
		}
		best, bestTotal = alloc, total
		lat := topo.EvalLatency(t, w, alloc, MessageBytes, slo)
		rental := alloc.HourlyRentalRate(model)
		share := 0.0
		if total > 0 {
			share = float64(egress) / float64(total)
		}
		res.Points = append(res.Points, LatencyPoint{
			SLOMillis:        slo,
			RentalUSDPerHour: rental.USD(),
			EgressUSDPerHour: egress.USD(),
			TotalUSDPerHour:  total.USD(),
			EgressShare:      share,
			P99Millis:        lat.P99Millis,
			MaxMillis:        lat.MaxMillis,
			Violations:       lat.Violations,
			VMs:              alloc.NumVMs(),
			Reused:           reused,
		})
	}

	// Degenerate case: one region, zero egress, no ceiling. The topo
	// strategies must delegate to gsp+cbp and reproduce its allocation
	// byte for byte — same workload (region tags and all), same model.
	one := topo.SyntheticTopology(1)
	topoCfg := core.Config{
		Tau: LatencyTau, MessageBytes: MessageBytes, Model: model,
		Stage1Strategy: s1, Stage2Strategy: s2, Topology: one,
	}
	paperCfg := core.Config{
		Tau: LatencyTau, MessageBytes: MessageBytes, Model: model,
		Stage1: core.Stage1Greedy, Stage2: core.Stage2Custom,
	}
	topoSol, err := core.SolveContext(ctx, w, topoCfg)
	if err != nil {
		return nil, fmt.Errorf("degenerate topo solve: %w", err)
	}
	paperSol, err := core.SolveContext(ctx, w, paperCfg)
	if err != nil {
		return nil, fmt.Errorf("degenerate paper solve: %w", err)
	}
	res.DegenerateDiff = DiffAllocations(topoSol.Allocation, paperSol.Allocation)
	res.DegenerateExact = res.DegenerateDiff == ""
	return res, nil
}

// Monotone reports whether the frontier's total cost is non-increasing as
// the ceiling loosens — the acceptance bar of the latency experiment.
func (r *LatencyResult) Monotone() bool {
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].TotalUSDPerHour > r.Points[i-1].TotalUSDPerHour {
			return false
		}
	}
	return true
}

// DiffAllocations compares two allocations placement by placement and
// returns a description of the first difference, or "" when they are
// identical (VM order, instance names, capacities, topics, subscriber
// lists, and accounting all equal).
func DiffAllocations(a, b *core.Allocation) string {
	if (a == nil) != (b == nil) {
		return "one allocation is nil"
	}
	if a == nil {
		return ""
	}
	if len(a.VMs) != len(b.VMs) {
		return fmt.Sprintf("VM count %d vs %d", len(a.VMs), len(b.VMs))
	}
	for i := range a.VMs {
		va, vb := a.VMs[i], b.VMs[i]
		if va.Instance != vb.Instance {
			return fmt.Sprintf("vm %d instance %q vs %q", i, va.Instance.Name, vb.Instance.Name)
		}
		if va.CapacityBytesPerHour != vb.CapacityBytesPerHour {
			return fmt.Sprintf("vm %d capacity %d vs %d", i, va.CapacityBytesPerHour, vb.CapacityBytesPerHour)
		}
		if va.InBytesPerHour != vb.InBytesPerHour || va.OutBytesPerHour != vb.OutBytesPerHour {
			return fmt.Sprintf("vm %d accounting (%d,%d) vs (%d,%d)", i,
				va.InBytesPerHour, va.OutBytesPerHour, vb.InBytesPerHour, vb.OutBytesPerHour)
		}
		if len(va.Placements) != len(vb.Placements) {
			return fmt.Sprintf("vm %d placement count %d vs %d", i, len(va.Placements), len(vb.Placements))
		}
		for j := range va.Placements {
			pa, pb := va.Placements[j], vb.Placements[j]
			if pa.Topic != pb.Topic {
				return fmt.Sprintf("vm %d placement %d topic %d vs %d", i, j, pa.Topic, pb.Topic)
			}
			if len(pa.Subs) != len(pb.Subs) {
				return fmt.Sprintf("vm %d topic %d sub count %d vs %d", i, pa.Topic, len(pa.Subs), len(pb.Subs))
			}
			for k := range pa.Subs {
				if pa.Subs[k] != pb.Subs[k] {
					return fmt.Sprintf("vm %d topic %d sub[%d] %d vs %d", i, pa.Topic, k, pa.Subs[k], pb.Subs[k])
				}
			}
		}
	}
	return ""
}

// Table renders the frontier.
func (r *LatencyResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Cost vs latency-SLO frontier on %s (τ=%d, %d regions)",
			r.Dataset, r.Tau, r.Regions),
		"SLO ms", "total $/h", "rental $/h", "egress $/h", "egress %", "p99 ms", "max ms", "VMs", "reused")
	for _, p := range r.Points {
		slo := fmt.Sprintf("%d", p.SLOMillis)
		if p.SLOMillis == 0 {
			slo = "none"
		}
		t.AddRow(slo, fmt.Sprintf("%.4f", p.TotalUSDPerHour), fmt.Sprintf("%.4f", p.RentalUSDPerHour),
			fmt.Sprintf("%.4f", p.EgressUSDPerHour), fmt.Sprintf("%.1f", p.EgressShare*100),
			p.P99Millis, p.MaxMillis, p.VMs, p.Reused)
	}
	return t
}

// LatencyBenchRow is one frontier point of BENCH_9.json.
type LatencyBenchRow struct {
	SLOMillis        int64   `json:"slo_ms"` // 0 = no ceiling
	TotalUSDPerHour  float64 `json:"total_usd_per_hour"`
	RentalUSDPerHour float64 `json:"rental_usd_per_hour"`
	EgressUSDPerHour float64 `json:"egress_usd_per_hour"`
	EgressShare      float64 `json:"egress_share"`
	P99Millis        int64   `json:"p99_ms"`
	MaxMillis        int64   `json:"max_ms"`
	Violations       int64   `json:"violations"`
	VMs              int     `json:"vms"`
	Reused           bool    `json:"reused"`
}

// LatencyBenchSummary is the headline block of BENCH_9.json.
type LatencyBenchSummary struct {
	// Monotone records that loosening the ceiling never increased total
	// cost; DegenerateExact that the single-region run matched the
	// paper-faithful solve byte for byte. Both are acceptance bars.
	Monotone        bool   `json:"monotone"`
	DegenerateExact bool   `json:"degenerate_exact"`
	DegenerateDiff  string `json:"degenerate_diff,omitempty"`
	// TightLooseRatio is cost(tightest)/cost(loosest) — how much the
	// latency guarantee costs.
	TightLooseRatio float64 `json:"tight_loose_ratio"`
}

// LatencyBench is the machine-readable experiment output (BENCH_9.json).
type LatencyBench struct {
	Bench      string              `json:"bench"`
	Dataset    string              `json:"dataset"`
	Tau        int64               `json:"tau"`
	Regions    int                 `json:"regions"`
	RegionSeed int64               `json:"region_seed"`
	Summary    LatencyBenchSummary `json:"summary"`
	Rows       []LatencyBenchRow   `json:"rows"`
}

// Bench flattens the result into the BENCH_9.json shape.
func (r *LatencyResult) Bench() *LatencyBench {
	b := &LatencyBench{
		Bench:      "latency-frontier",
		Dataset:    r.Dataset.String(),
		Tau:        r.Tau,
		Regions:    r.Regions,
		RegionSeed: LatencyRegionSeed,
		Summary: LatencyBenchSummary{
			Monotone:        r.Monotone(),
			DegenerateExact: r.DegenerateExact,
			DegenerateDiff:  r.DegenerateDiff,
		},
	}
	if n := len(r.Points); n > 0 && r.Points[n-1].TotalUSDPerHour > 0 {
		b.Summary.TightLooseRatio = r.Points[0].TotalUSDPerHour / r.Points[n-1].TotalUSDPerHour
	}
	for _, p := range r.Points {
		b.Rows = append(b.Rows, LatencyBenchRow{
			SLOMillis:        p.SLOMillis,
			TotalUSDPerHour:  p.TotalUSDPerHour,
			RentalUSDPerHour: p.RentalUSDPerHour,
			EgressUSDPerHour: p.EgressUSDPerHour,
			EgressShare:      p.EgressShare,
			P99Millis:        p.P99Millis,
			MaxMillis:        p.MaxMillis,
			Violations:       p.Violations,
			VMs:              p.VMs,
			Reused:           p.Reused,
		})
	}
	return b
}

// WriteJSON emits the experiment in the BENCH_9.json format.
func (b *LatencyBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
