package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/workload"
)

// TestRunDiurnalAcceptance is the diurnal experiment's acceptance check on
// the Twitter-like timeline: the hysteresis controller is strictly cheaper
// than static peak provisioning, within a bounded factor of the per-epoch
// oracle, every epoch's allocation satisfies its snapshot, and the tables
// render.
func TestRunDiurnalAcceptance(t *testing.T) {
	res, err := RunDiurnal(context.Background(), Twitter, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.NumEpochs() != res.Modulation.Epochs {
		t.Fatalf("timeline has %d epochs, want %d", res.Timeline.NumEpochs(), res.Modulation.Epochs)
	}

	static, oracle, hyst := res.Static.TotalCost(), res.Oracle.TotalCost(), res.Hysteresis.TotalCost()
	if hyst >= static {
		t.Errorf("hysteresis %v not strictly cheaper than static peak %v", hyst, static)
	}
	if oracle > static {
		t.Errorf("oracle %v costs more than static peak %v", oracle, static)
	}
	if float64(hyst) > 2.5*float64(oracle) {
		t.Errorf("hysteresis %v outside 2.5× of oracle %v", hyst, oracle)
	}
	if res.SavingsVsStatic() <= 0 {
		t.Errorf("SavingsVsStatic = %v, want > 0", res.SavingsVsStatic())
	}
	if res.OverOracle() < 0 {
		t.Errorf("OverOracle = %v, want ≥ 0", res.OverOracle())
	}

	// Every epoch of every strategy satisfies its snapshot.
	for e := 0; e < res.Timeline.NumEpochs(); e++ {
		w := res.Timeline.Epochs[e]
		checkEpochSatisfied(t, "oracle", e, w, res.Oracle.Allocations[e], res.Tau)
		checkEpochSatisfied(t, "hysteresis", e, w, res.Hysteresis.Allocations[e], res.Tau)
		checkEpochSatisfied(t, "static", e, w, res.Static.Allocations[e], res.Tau)
	}

	var b strings.Builder
	if err := res.SummaryTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := res.EpochTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"static-peak", "oracle", "hysteresis", "activity"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

// checkEpochSatisfied asserts the allocation's placements deliver at least
// τ_v = min(τ, demand) to every subscriber of the epoch snapshot.
func checkEpochSatisfied(t *testing.T, name string, e int, w *workload.Workload, alloc *core.Allocation, tau int64) {
	t.Helper()
	delivered := make([]int64, w.NumSubscribers())
	for _, vm := range alloc.VMs {
		for _, p := range vm.Placements {
			for _, v := range p.Subs {
				delivered[v] += w.Rate(p.Topic)
			}
		}
	}
	for v := 0; v < w.NumSubscribers(); v++ {
		if tauV := w.TauV(workload.SubID(v), tau); delivered[v] < tauV {
			t.Errorf("%s epoch %d: subscriber %d delivered %d events/h, needs %d",
				name, e, v, delivered[v], tauV)
			return
		}
	}
}
