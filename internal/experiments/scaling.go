package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
)

// ScalingRow measures one full solve at one workload scale.
type ScalingRow struct {
	Scale       float64
	Pairs       int64
	Stage1      time.Duration
	Stage2      time.Duration
	Total       time.Duration
	PairsPerSec float64
}

// RunScaling measures end-to-end solve time across workload scales — the
// paper's §IV-E claim that the solution "runs fast and can be run
// periodically" (30 s for 12M pairs, 25 min for 638M pairs in the authors'
// C++). Near-constant pairs-per-second across scales indicates the
// near-linear behavior the two-stage design targets.
func RunScaling(ctx context.Context, d Dataset, tau int64, scales []float64) ([]ScalingRow, error) {
	if len(scales) == 0 {
		scales = []float64{0.05, 0.1, 0.2, 0.4}
	}
	rows := make([]ScalingRow, 0, len(scales))
	for _, scale := range scales {
		w, err := Generate(d, scale)
		if err != nil {
			return nil, err
		}
		model := ModelFor(pricing.C3Large, w)
		cfg := core.DefaultConfig(tau, model)
		res, err := core.SolveContext(ctx, w, cfg)
		if err != nil {
			return nil, err
		}
		total := res.Stage1Time + res.Stage2Time
		rows = append(rows, ScalingRow{
			Scale:       scale,
			Pairs:       w.NumPairs(),
			Stage1:      res.Stage1Time,
			Stage2:      res.Stage2Time,
			Total:       total,
			PairsPerSec: float64(w.NumPairs()) / total.Seconds(),
		})
	}
	return rows, nil
}

// ScalingTable renders the scaling rows.
func ScalingTable(d Dataset, tau int64, rows []ScalingRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Solve-time scaling on %s, τ=%d (paper §IV-E)", d, tau),
		"scale", "pairs", "stage1", "stage2", "total", "pairs/s")
	for _, r := range rows {
		t.AddRow(r.Scale, r.Pairs,
			r.Stage1.Round(time.Microsecond).String(),
			r.Stage2.Round(time.Microsecond).String(),
			r.Total.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", r.PairsPerSec))
	}
	return t
}
