package tracegen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pubsub-systems/mcss/internal/stats"
	"github.com/pubsub-systems/mcss/internal/workload"
)

func TestAliasTableUniform(t *testing.T) {
	table, err := newAliasTable([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 40_000
	for i := 0; i < n; i++ {
		counts[table.sample(rng)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("index %d sampled with frequency %v, want ~0.25", i, frac)
		}
	}
}

func TestAliasTableSkewed(t *testing.T) {
	table, err := newAliasTable([]float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	count0 := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if table.sample(rng) == 0 {
			count0++
		}
	}
	frac := float64(count0) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("index 0 sampled with frequency %v, want ~0.9", frac)
	}
}

func TestAliasTableZeroWeightNeverSampled(t *testing.T) {
	table, err := newAliasTable([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		if table.sample(rng) == 1 {
			t.Fatal("sampled zero-weight index")
		}
	}
}

func TestAliasTableRejectsAllZero(t *testing.T) {
	if _, err := newAliasTable([]float64{0, 0}); err == nil {
		t.Error("expected error for all-zero weights")
	}
	if _, err := newAliasTable(nil); err == nil {
		t.Error("expected error for empty weights")
	}
}

func TestAliasTableNegativeTreatedAsZero(t *testing.T) {
	table, err := newAliasTable([]float64{-5, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5_000; i++ {
		if table.sample(rng) == 0 {
			t.Fatal("sampled negative-weight index")
		}
	}
}

func TestPropertyAliasTableFrequencies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		weights := make([]float64, n)
		var total float64
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(10))
			total += weights[i]
		}
		table, err := newAliasTable(weights)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		const draws = 30_000
		for i := 0; i < draws; i++ {
			counts[table.sample(rng)]++
		}
		for i := range weights {
			want := weights[i] / total
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100_000; i++ {
		v := boundedPareto(rng, 3, 500, 1.8)
		if v < 3 || v > 500 {
			t.Fatalf("sample %d out of [3,500]", v)
		}
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if v := boundedPareto(rng, 7, 7, 2); v != 7 {
		t.Errorf("degenerate range sample = %d, want 7", v)
	}
	if v := boundedPareto(rng, 7, 3, 2); v != 7 {
		t.Errorf("inverted range sample = %d, want 7", v)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200_000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(boundedPareto(rng, 1, 1_000_000, 2.0))
	}
	// Most mass near the minimum, but a real tail.
	if frac := stats.TailFraction(samples, 1); frac > 0.6 {
		t.Errorf("P(X>1) = %v, want most mass at 1 for alpha=2", frac)
	}
	if frac := stats.TailFraction(samples, 1000); frac == 0 {
		t.Error("no samples above 1000; tail too light")
	}
	// CCDF slope should be roughly -(alpha-1) = -1 in log-log space.
	ccdf := stats.CCDF(samples)
	slope, err := stats.LogLogSlope(ccdf[:len(ccdf)-1])
	if err != nil {
		t.Fatal(err)
	}
	if slope > -0.6 || slope < -1.6 {
		t.Errorf("CCDF slope = %v, want ≈ -1", slope)
	}
}

func testScaleTwitter() TwitterConfig {
	cfg := DefaultTwitterConfig()
	return cfg.Scale(0.1) // 2k topics, 10k subscribers: fast for tests
}

func testScaleSpotify() SpotifyConfig {
	cfg := DefaultSpotifyConfig()
	return cfg.Scale(0.1)
}

func TestTwitterGeneratesValidWorkload(t *testing.T) {
	w, err := Twitter(testScaleTwitter())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w.NumSubscribers() != 10_000 {
		t.Errorf("NumSubscribers = %d, want 10000", w.NumSubscribers())
	}
	if w.NumTopics() == 0 || w.NumTopics() > 2_000 {
		t.Errorf("NumTopics = %d, want (0, 2000]", w.NumTopics())
	}
}

func TestTwitterDeterministic(t *testing.T) {
	cfg := testScaleTwitter()
	w1, err := Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.NumPairs() != w2.NumPairs() || w1.NumTopics() != w2.NumTopics() {
		t.Fatal("same seed produced different shapes")
	}
	for v := 0; v < w1.NumSubscribers(); v++ {
		t1, t2 := w1.Topics(workload.SubID(v)), w2.Topics(workload.SubID(v))
		if len(t1) != len(t2) {
			t.Fatalf("subscriber %d interest size differs", v)
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("subscriber %d interest differs at %d", v, i)
			}
		}
	}
	for tid := 0; tid < w1.NumTopics(); tid++ {
		if w1.Rate(workload.TopicID(tid)) != w2.Rate(workload.TopicID(tid)) {
			t.Fatalf("topic %d rate differs", tid)
		}
	}
}

func TestTwitterSeedChangesOutput(t *testing.T) {
	cfg := testScaleTwitter()
	w1, _ := Twitter(cfg)
	cfg.Seed++
	w2, _ := Twitter(cfg)
	if w1.NumPairs() == w2.NumPairs() && w1.TotalEventRate() == w2.TotalEventRate() {
		t.Error("different seeds produced identical workload fingerprint")
	}
}

func TestTwitterFollowingsAnomalies(t *testing.T) {
	w, err := Twitter(testScaleTwitter())
	if err != nil {
		t.Fatal(err)
	}
	at20, at19 := 0, 0
	for v := 0; v < w.NumSubscribers(); v++ {
		switch w.Followings(workload.SubID(v)) {
		case 20:
			at20++
		case 19:
			at19++
		}
	}
	// The spike at 20 should stick far out of the smooth neighborhood.
	if at20 < 3*at19+10 {
		t.Errorf("followings spike at 20 missing: |20|=%d |19|=%d", at20, at19)
	}
}

func TestTwitterFollowerDistributionHeavyTailed(t *testing.T) {
	w, err := Twitter(testScaleTwitter())
	if err != nil {
		t.Fatal(err)
	}
	followers := make([]float64, w.NumTopics())
	for tid := range followers {
		followers[tid] = float64(w.Followers(workload.TopicID(tid)))
	}
	mean, _ := stats.Mean(followers)
	max, _ := stats.Max(followers)
	if max < 20*mean {
		t.Errorf("follower max %v vs mean %v: tail too light", max, mean)
	}
	ccdf := stats.CCDF(followers)
	slope, err := stats.LogLogSlope(ccdf[:len(ccdf)-1])
	if err != nil {
		t.Fatal(err)
	}
	if slope >= 0 {
		t.Errorf("follower CCDF slope = %v, want negative (power-law-ish)", slope)
	}
}

func TestTwitterCelebrityDamping(t *testing.T) {
	cfg := testScaleTwitter()
	cfg.BotFraction = 0 // isolate the damping effect
	w, err := Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean rate of celebrity topics should fall below the trend of
	// mid-popularity topics (paper Fig. 10's flattening cloud).
	var midSum, midN, celebSum, celebN float64
	for tid := 0; tid < w.NumTopics(); tid++ {
		f := w.Followers(workload.TopicID(tid))
		r := float64(w.Rate(workload.TopicID(tid)))
		perFollower := r / float64(f)
		switch {
		case f >= 200 && int64(f) <= cfg.CelebrityFollowers:
			midSum += perFollower
			midN++
		case int64(f) > cfg.CelebrityFollowers:
			celebSum += perFollower
			celebN++
		}
	}
	if midN == 0 || celebN == 0 {
		t.Skip("scaled trace lacks celebrity population; increase scale")
	}
	if celebSum/celebN >= midSum/midN {
		t.Errorf("celebrity rate-per-follower %v ≥ mid-tier %v; damping not visible",
			celebSum/celebN, midSum/midN)
	}
}

func TestSpotifyGeneratesValidWorkload(t *testing.T) {
	w, err := Spotify(testScaleSpotify())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Interest sets are small: mean followings should be modest (the
	// paper's trace averages ~2.4; we accept a loose band).
	mean := float64(w.NumPairs()) / float64(w.NumSubscribers())
	if mean < 1 || mean > 8 {
		t.Errorf("mean followings = %v, want small (1..8)", mean)
	}
}

func TestSpotifyRatesWithinBounds(t *testing.T) {
	cfg := testScaleSpotify()
	w, err := Spotify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < w.NumTopics(); tid++ {
		r := w.Rate(workload.TopicID(tid))
		if r < 1 || r > cfg.MaxRate {
			t.Fatalf("rate %d out of [1, %d]", r, cfg.MaxRate)
		}
	}
}

func TestSpotifyDeterministic(t *testing.T) {
	cfg := testScaleSpotify()
	w1, _ := Spotify(cfg)
	w2, _ := Spotify(cfg)
	if w1.NumPairs() != w2.NumPairs() || w1.TotalEventRate() != w2.TotalEventRate() {
		t.Error("same seed produced different workloads")
	}
}

func TestRandomGenerator(t *testing.T) {
	w, err := Random(RandomConfig{Topics: 50, Subscribers: 200, MaxFollowings: 5, MaxRate: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w.NumSubscribers() != 200 {
		t.Errorf("NumSubscribers = %d, want 200", w.NumSubscribers())
	}
}

func TestRandomDefaultsApplied(t *testing.T) {
	w, err := Random(RandomConfig{Topics: 10, Subscribers: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGeneratorsRejectBadConfig(t *testing.T) {
	if _, err := Twitter(TwitterConfig{}); err == nil {
		t.Error("Twitter(zero config) should error")
	}
	if _, err := Spotify(SpotifyConfig{}); err == nil {
		t.Error("Spotify(zero config) should error")
	}
	if _, err := Random(RandomConfig{}); err == nil {
		t.Error("Random(zero config) should error")
	}
}

func TestScaleHelpers(t *testing.T) {
	tw := DefaultTwitterConfig().Scale(0.5)
	if tw.Topics != 10_000 || tw.Subscribers != 50_000 {
		t.Errorf("Twitter scale: %d topics %d subs", tw.Topics, tw.Subscribers)
	}
	sp := DefaultSpotifyConfig().Scale(2)
	if sp.Topics != 60_000 || sp.Subscribers != 260_000 {
		t.Errorf("Spotify scale: %d topics %d subs", sp.Topics, sp.Subscribers)
	}
}

func TestPropertyRandomWorkloadsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		w, err := Random(RandomConfig{
			Topics:        1 + int(seed%17&0xf),
			Subscribers:   1 + int(seed%23&0x1f),
			MaxFollowings: 4,
			MaxRate:       50,
			Seed:          seed,
		})
		if err != nil {
			return false
		}
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
