package tracegen

import (
	"math"
	"testing"

	"github.com/pubsub-systems/mcss/internal/workload"
)

func diurnalBase(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := Random(RandomConfig{Topics: 40, Subscribers: 200, MaxFollowings: 4, MaxRate: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDiurnalShapeAndDeterminism(t *testing.T) {
	base := diurnalBase(t)
	cfg := DefaultDiurnalConfig()
	tl, err := Diurnal(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumEpochs() != cfg.Epochs || tl.EpochMinutes != cfg.EpochMinutes {
		t.Fatalf("timeline shape %d×%dmin, want %d×%dmin",
			tl.NumEpochs(), tl.EpochMinutes, cfg.Epochs, cfg.EpochMinutes)
	}
	for e, w := range tl.Epochs {
		if w.NumTopics() != base.NumTopics() || w.NumSubscribers() != base.NumSubscribers() {
			t.Fatalf("epoch %d drifted to %d topics / %d subscribers", e, w.NumTopics(), w.NumSubscribers())
		}
	}
	again, err := Diurnal(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := range tl.Epochs {
		for i := 0; i < tl.Epochs[e].NumTopics(); i++ {
			if tl.Epochs[e].Rate(workload.TopicID(i)) != again.Epochs[e].Rate(workload.TopicID(i)) {
				t.Fatalf("epoch %d not deterministic at topic %d", e, i)
			}
		}
	}
}

func TestDiurnalActivityCurve(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	if g := cfg.Activity(cfg.PeakHour); math.Abs(g-1) > 1e-9 {
		t.Errorf("activity at peak = %v, want 1", g)
	}
	trough := math.Mod(cfg.PeakHour+12, 24)
	if g := cfg.Activity(trough); math.Abs(g-cfg.TroughRatio) > 1e-9 {
		t.Errorf("activity at trough = %v, want %v", g, cfg.TroughRatio)
	}
	for h := 0.0; h < 24; h += 0.5 {
		g := cfg.Activity(h)
		if g < cfg.TroughRatio-1e-9 || g > 1+1e-9 {
			t.Errorf("activity(%v) = %v outside [%v, 1]", h, g, cfg.TroughRatio)
		}
	}
}

func TestDiurnalRatesTrackActivity(t *testing.T) {
	base := diurnalBase(t)
	cfg := DefaultDiurnalConfig()
	cfg.RateJitterSigma = 0 // smooth curve for exact comparison
	cfg.ChurnFraction = 0
	tl, err := Diurnal(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var baseTotal int64
	for i := 0; i < base.NumTopics(); i++ {
		baseTotal += base.Rate(workload.TopicID(i))
	}
	for e, w := range tl.Epochs {
		g := cfg.Activity(float64(e) * float64(cfg.EpochMinutes) / 60)
		var total int64
		for i := 0; i < w.NumTopics(); i++ {
			total += w.Rate(workload.TopicID(i))
		}
		ratio := float64(total) / float64(baseTotal)
		// Rounding and the ≥1 floor allow small deviation.
		if math.Abs(ratio-g) > 0.05 {
			t.Errorf("epoch %d total rate ratio %.3f, activity %.3f", e, ratio, g)
		}
	}
}

func TestDiurnalChurnNestsAndVanishesAtPeak(t *testing.T) {
	base := diurnalBase(t)
	cfg := DefaultDiurnalConfig()
	cfg.PeakHour = 0 // epoch 0 is the peak, epoch 12 the trough
	tl, err := Diurnal(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	asleep := func(e int) map[int]bool {
		out := make(map[int]bool)
		for v := 0; v < tl.Epochs[e].NumSubscribers(); v++ {
			if tl.Epochs[e].Followings(workload.SubID(v)) == 0 && base.Followings(workload.SubID(v)) > 0 {
				out[v] = true
			}
		}
		return out
	}
	if n := len(asleep(0)); n != 0 {
		t.Errorf("%d subscribers asleep at peak, want 0", n)
	}
	trough := asleep(12)
	if len(trough) == 0 {
		t.Error("nobody asleep at the trough despite ChurnFraction > 0")
	}
	frac := float64(len(trough)) / float64(base.NumSubscribers())
	if math.Abs(frac-cfg.ChurnFraction) > 0.1 {
		t.Errorf("trough sleep fraction %.2f, want ≈%.2f", frac, cfg.ChurnFraction)
	}
	// Sleep sets nest: whoever sleeps at a shoulder epoch also sleeps at
	// the trough.
	for v := range asleep(9) {
		if !trough[v] {
			t.Errorf("subscriber %d asleep at epoch 9 but awake at the trough", v)
		}
	}
}

func TestDiurnalFlashCrowd(t *testing.T) {
	base := diurnalBase(t)
	cfg := DefaultDiurnalConfig()
	cfg.RateJitterSigma = 0
	cfg.FlashEpoch, cfg.FlashTopics, cfg.FlashFactor = 4, 2, 5
	tl, err := Diurnal(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two hottest base topics carry 5× their base rate in the flash
	// epoch — far above the activity-scaled rate.
	hot := hottestTopics(base, 2)
	for _, id := range hot {
		want := int64(float64(base.Rate(id)) * cfg.FlashFactor)
		if got := tl.Epochs[cfg.FlashEpoch].Rate(id); got != want {
			t.Errorf("flash epoch rate of topic %d = %d, want %d", id, got, want)
		}
	}
	// And the envelope picks the flash rates up.
	env, err := tl.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range hot {
		if env.Rate(id) < tl.Epochs[cfg.FlashEpoch].Rate(id) {
			t.Errorf("envelope misses the flash rate of topic %d", id)
		}
	}
}

func TestDiurnalRejectsBadConfig(t *testing.T) {
	base := diurnalBase(t)
	bad := []DiurnalConfig{
		{Epochs: -1},
		{TroughRatio: 1.5},
		{ChurnFraction: 1},
		{FlashEpoch: 99},
		{FlashEpoch: 2, FlashTopics: 0, FlashFactor: 2},
		{FlashEpoch: 2, FlashTopics: 1, FlashFactor: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Diurnal(base, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Diurnal(nil, DefaultDiurnalConfig()); err == nil {
		t.Error("nil base accepted")
	}
}
