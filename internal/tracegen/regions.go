package tracegen

import (
	"fmt"
	"math/rand"

	"github.com/pubsub-systems/mcss/internal/workload"
)

// TagRegions tags an existing workload with a synthetic n-region geography,
// deterministically for a given seed: each subscriber lands in a region
// drawn from a Zipf-like skew (region 0 is the largest market, the tail
// thins as 1/(1+i)), and each topic's publisher is pinned to one region —
// the region of its plurality audience with probability 3/4 (publishers
// tend to live where their followers are), a skew-drawn region otherwise.
// Pinning publishers per topic rather than redrawing them keeps co-located
// pairs a real phenomenon for the topology-aware strategies to exploit.
//
// n ≤ 1 returns the workload untouched (the region-agnostic setting).
func TagRegions(w *workload.Workload, n int, seed int64) (*workload.Workload, error) {
	if n <= 1 {
		return w, nil
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("tracegen: %d regions is out of range", n)
	}
	rng := rand.New(rand.NewSource(seed))

	// Zipf-ish region weights: w_i = 1/(1+i), cumulative for sampling.
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / float64(1+i)
		cum[i] = total
	}
	draw := func() int32 {
		x := rng.Float64() * total
		for i, c := range cum {
			if x < c {
				return int32(i)
			}
		}
		return int32(n - 1)
	}

	subRegions := make([]int32, w.NumSubscribers())
	for v := range subRegions {
		subRegions[v] = draw()
	}

	topicRegions := make([]int32, w.NumTopics())
	counts := make([]int, n)
	for t := range topicRegions {
		// Plurality region of the topic's subscribers (ties → lower index).
		for i := range counts {
			counts[i] = 0
		}
		best := 0
		for _, v := range w.Subscribers(workload.TopicID(t)) {
			r := subRegions[v]
			counts[r]++
			if counts[r] > counts[best] || (counts[r] == counts[best] && int(r) < best) {
				best = int(r)
			}
		}
		if rng.Float64() < 0.75 {
			topicRegions[t] = int32(best)
		} else {
			topicRegions[t] = draw()
		}
	}
	return w.WithRegions(topicRegions, subRegions)
}
