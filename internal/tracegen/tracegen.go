// Package tracegen synthesizes pub/sub workloads with the statistical shape
// of the two proprietary traces the MCSS paper evaluates on:
//
//   - a Twitter-like trace — power-law follower and following distributions
//     (with the historical anomalies at 20 and 2000 followings the paper's
//     Appendix D documents), heavy-tailed tweet rates correlated with
//     follower count up to a celebrity threshold above which rates are
//     damped (paper Fig. 10), and a small population of very-high-rate bots;
//
//   - a Spotify-like trace — much smaller interest sets (the paper's trace
//     averages ~2.4 followings per subscriber), moderate log-normal playback
//     event rates, and a milder popularity skew.
//
// The generators are deterministic for a given seed and return validated
// workload.Workload values. Since the algorithms under study consume only
// (T, V, Int, ev), matching these distributions is what preserves the
// paper's cost and savings shapes; tracegen tests assert the distributional
// properties, and the experiments packages regenerate the paper's Appendix-D
// figures from these synthetic traces.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/pubsub-systems/mcss/internal/workload"
)

// TwitterConfig parameterizes the Twitter-like generator. Zero fields are
// filled with defaults by DefaultTwitterConfig; use that and then override.
type TwitterConfig struct {
	// Topics is the number of publishing users (users with ≥1 follower).
	Topics int
	// Subscribers is the number of following users.
	Subscribers int
	// Seed makes generation deterministic.
	Seed int64

	// PopularityAlpha is the tail exponent of the topic popularity weight
	// (smaller = more skew). The paper's follower CCDF is roughly
	// power-law with exponent ~2.
	PopularityAlpha float64
	// FollowingsAlpha is the tail exponent of the per-subscriber interest
	// size distribution.
	FollowingsAlpha float64
	// MinFollowings/MaxFollowings bound the interest size.
	MinFollowings, MaxFollowings int64
	// SpikeAt20/SpikeAt2000 are the probabilities of a subscriber landing
	// exactly on the historical 20/2000 followings anomalies.
	SpikeAt20, SpikeAt2000 float64

	// RateExponent couples event rate to follower count:
	// rate ≈ RateScale · followers^RateExponent · lognormal noise.
	RateExponent float64
	// RateScale scales the rate (events/hour).
	RateScale float64
	// RateNoiseSigma is the σ of the multiplicative log-normal noise.
	RateNoiseSigma float64
	// MaxRate caps rates (events/hour).
	MaxRate int64
	// CelebrityFollowers is the follower count beyond which rates are
	// damped (celebrities tweet less than the linear trend predicts).
	CelebrityFollowers int64
	// CelebrityDamping multiplies celebrity rates (0 < d ≤ 1).
	CelebrityDamping float64
	// BotFraction of topics get a bot-like rate drawn uniformly in
	// [MaxRate/10, MaxRate] regardless of followers.
	BotFraction float64
}

// DefaultTwitterConfig returns the configuration used by the paper-figure
// experiments: a ~1%-of-the-paper's-sample scale that solves in seconds.
func DefaultTwitterConfig() TwitterConfig {
	return TwitterConfig{
		Topics:             20_000,
		Subscribers:        100_000,
		Seed:               42,
		PopularityAlpha:    1.7,
		FollowingsAlpha:    1.6,
		MinFollowings:      1,
		MaxFollowings:      4_000,
		SpikeAt20:          0.06,
		SpikeAt2000:        0.004,
		RateExponent:       0.75,
		RateScale:          0.6,
		RateNoiseSigma:     1.6,
		MaxRate:            100_000,
		CelebrityFollowers: 2_000,
		CelebrityDamping:   0.05,
		BotFraction:        0.002,
	}
}

// Scale multiplies the topic and subscriber counts by f (≥ 0), keeping the
// distributional parameters fixed.
func (c TwitterConfig) Scale(f float64) TwitterConfig {
	c.Topics = int(float64(c.Topics) * f)
	c.Subscribers = int(float64(c.Subscribers) * f)
	return c
}

// Twitter generates a Twitter-like workload.
func Twitter(cfg TwitterConfig) (*workload.Workload, error) {
	if cfg.Topics <= 0 || cfg.Subscribers <= 0 {
		return nil, fmt.Errorf("tracegen: need positive Topics (%d) and Subscribers (%d)", cfg.Topics, cfg.Subscribers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Topic popularity weights: bounded Pareto.
	weights := make([]float64, cfg.Topics)
	for i := range weights {
		weights[i] = float64(boundedPareto(rng, 1, 1_000_000, cfg.PopularityAlpha))
	}
	table, err := newAliasTable(weights)
	if err != nil {
		return nil, err
	}

	// Interests: every subscriber samples an interest size, then picks
	// distinct topics popularity-proportionally.
	subOff := make([]int64, 1, cfg.Subscribers+1)
	var subTopics []workload.TopicID
	picked := make(map[int32]struct{}, 64)
	for v := 0; v < cfg.Subscribers; v++ {
		deg := cfg.sampleFollowings(rng)
		if deg > int64(cfg.Topics)/2 {
			deg = int64(cfg.Topics) / 2
			if deg == 0 {
				deg = 1
			}
		}
		clear(picked)
		for int64(len(picked)) < deg {
			picked[table.sample(rng)] = struct{}{}
		}
		start := len(subTopics)
		for t := range picked {
			subTopics = append(subTopics, workload.TopicID(t))
		}
		seg := subTopics[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		subOff = append(subOff, int64(len(subTopics)))
	}

	// Follower counts (to couple rates to popularity).
	followers := make([]int64, cfg.Topics)
	for _, t := range subTopics {
		followers[t]++
	}

	// Event rates.
	rates := make([]int64, cfg.Topics)
	for t := range rates {
		if rng.Float64() < cfg.BotFraction {
			lo := cfg.MaxRate / 10
			rates[t] = lo + rng.Int63n(cfg.MaxRate-lo+1)
			continue
		}
		f := float64(followers[t])
		if f < 1 {
			f = 1
		}
		mean := cfg.RateScale * math.Pow(f, cfg.RateExponent)
		if followers[t] > cfg.CelebrityFollowers {
			mean *= cfg.CelebrityDamping
		}
		noise := math.Exp(rng.NormFloat64() * cfg.RateNoiseSigma)
		r := int64(mean * noise)
		if r < 1 {
			r = 1
		}
		if r > cfg.MaxRate {
			r = cfg.MaxRate
		}
		rates[t] = r
	}

	return compact(rates, subOff, subTopics)
}

// sampleFollowings draws an interest size with the CCDF anomalies at 20 and
// 2000 followings.
func (c TwitterConfig) sampleFollowings(rng *rand.Rand) int64 {
	u := rng.Float64()
	switch {
	case u < c.SpikeAt20:
		return 20
	case u < c.SpikeAt20+c.SpikeAt2000:
		return 2000
	default:
		return boundedPareto(rng, c.MinFollowings, c.MaxFollowings, c.FollowingsAlpha)
	}
}

// SpotifyConfig parameterizes the Spotify-like generator.
type SpotifyConfig struct {
	// Topics is the number of publishing users (artists/friends with
	// followers).
	Topics int
	// Subscribers is the number of following users.
	Subscribers int
	// Seed makes generation deterministic.
	Seed int64

	// PopularityAlpha is the topic popularity tail exponent.
	PopularityAlpha float64
	// FollowingsAlpha, MinFollowings, MaxFollowings shape interest sizes;
	// the paper's trace averages ~2.4 followings per subscriber.
	FollowingsAlpha              float64
	MinFollowings, MaxFollowings int64

	// RateLogMean/RateLogSigma parameterize the log-normal playback event
	// rate (events/hour): rate = exp(N(RateLogMean, RateLogSigma)).
	RateLogMean, RateLogSigma float64
	// MaxRate caps rates.
	MaxRate int64
}

// DefaultSpotifyConfig returns the experiment-scale Spotify-like
// configuration.
func DefaultSpotifyConfig() SpotifyConfig {
	return SpotifyConfig{
		Topics:          30_000,
		Subscribers:     130_000,
		Seed:            7,
		PopularityAlpha: 2.0,
		FollowingsAlpha: 2.2,
		MinFollowings:   1,
		MaxFollowings:   400,
		RateLogMean:     math.Log(25),
		RateLogSigma:    1.7,
		MaxRate:         20_000,
	}
}

// Scale multiplies the topic and subscriber counts by f, keeping the
// distributional parameters fixed.
func (c SpotifyConfig) Scale(f float64) SpotifyConfig {
	c.Topics = int(float64(c.Topics) * f)
	c.Subscribers = int(float64(c.Subscribers) * f)
	return c
}

// Spotify generates a Spotify-like workload.
func Spotify(cfg SpotifyConfig) (*workload.Workload, error) {
	if cfg.Topics <= 0 || cfg.Subscribers <= 0 {
		return nil, fmt.Errorf("tracegen: need positive Topics (%d) and Subscribers (%d)", cfg.Topics, cfg.Subscribers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	weights := make([]float64, cfg.Topics)
	for i := range weights {
		weights[i] = float64(boundedPareto(rng, 1, 100_000, cfg.PopularityAlpha))
	}
	table, err := newAliasTable(weights)
	if err != nil {
		return nil, err
	}

	subOff := make([]int64, 1, cfg.Subscribers+1)
	var subTopics []workload.TopicID
	picked := make(map[int32]struct{}, 16)
	for v := 0; v < cfg.Subscribers; v++ {
		deg := boundedPareto(rng, cfg.MinFollowings, cfg.MaxFollowings, cfg.FollowingsAlpha)
		if deg > int64(cfg.Topics)/2 {
			deg = int64(cfg.Topics) / 2
			if deg == 0 {
				deg = 1
			}
		}
		clear(picked)
		for int64(len(picked)) < deg {
			picked[table.sample(rng)] = struct{}{}
		}
		start := len(subTopics)
		for t := range picked {
			subTopics = append(subTopics, workload.TopicID(t))
		}
		seg := subTopics[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		subOff = append(subOff, int64(len(subTopics)))
	}

	rates := make([]int64, cfg.Topics)
	for t := range rates {
		r := int64(math.Exp(rng.NormFloat64()*cfg.RateLogSigma + cfg.RateLogMean))
		if r < 1 {
			r = 1
		}
		if r > cfg.MaxRate {
			r = cfg.MaxRate
		}
		rates[t] = r
	}

	return compact(rates, subOff, subTopics)
}

// RandomConfig parameterizes the uniform small-workload generator used by
// tests and the quickstart example.
type RandomConfig struct {
	Topics      int
	Subscribers int
	// MaxFollowings bounds the uniform interest size in [1, MaxFollowings].
	MaxFollowings int
	// MaxRate bounds the uniform event rate in [1, MaxRate].
	MaxRate int64
	Seed    int64
}

// Random generates a uniform workload: interest sizes and rates drawn
// uniformly. Not representative of social workloads; useful for fuzzing and
// quick demos.
func Random(cfg RandomConfig) (*workload.Workload, error) {
	if cfg.Topics <= 0 || cfg.Subscribers <= 0 {
		return nil, fmt.Errorf("tracegen: need positive Topics (%d) and Subscribers (%d)", cfg.Topics, cfg.Subscribers)
	}
	if cfg.MaxFollowings <= 0 {
		cfg.MaxFollowings = 3
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rates := make([]int64, cfg.Topics)
	for i := range rates {
		rates[i] = 1 + rng.Int63n(cfg.MaxRate)
	}
	subOff := make([]int64, 1, cfg.Subscribers+1)
	var subTopics []workload.TopicID
	for v := 0; v < cfg.Subscribers; v++ {
		deg := 1 + rng.Intn(cfg.MaxFollowings)
		if deg > cfg.Topics {
			deg = cfg.Topics
		}
		perm := rng.Perm(cfg.Topics)[:deg]
		sort.Ints(perm)
		for _, t := range perm {
			subTopics = append(subTopics, workload.TopicID(t))
		}
		subOff = append(subOff, int64(len(subTopics)))
	}
	return compact(rates, subOff, subTopics)
}

// compact drops topics that ended up with no subscribers (the workload model
// requires non-empty V_t), re-densifies topic identifiers, and builds the
// Workload.
func compact(rates []int64, subOff []int64, subTopics []workload.TopicID) (*workload.Workload, error) {
	used := make([]bool, len(rates))
	for _, t := range subTopics {
		used[t] = true
	}
	remap := make([]workload.TopicID, len(rates))
	newRates := make([]int64, 0, len(rates))
	for t, u := range used {
		if !u {
			remap[t] = -1
			continue
		}
		remap[t] = workload.TopicID(len(newRates))
		newRates = append(newRates, rates[t])
	}
	for i, t := range subTopics {
		subTopics[i] = remap[t]
	}
	return workload.FromCSR(newRates, subOff, subTopics, nil, nil)
}
