package tracegen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pubsub-systems/mcss/internal/timeline"
	"github.com/pubsub-systems/mcss/internal/workload"
)

// DiurnalConfig parameterizes the diurnal timeline modulator: it takes a
// base workload snapshot (the peak) and derives one workload per epoch by
// modulating event rates on a 24-hour activity curve, putting a fraction of
// subscribers to sleep in the troughs (join/leave churn with stable IDs),
// and optionally spiking the hottest topics in one epoch (a flash crowd).
// Only zero values of Epochs, EpochMinutes, TroughRatio, and FlashFactor
// are filled with defaults (zero is meaningful for the other fields —
// PeakHour 0 is midnight, ChurnFraction 0 disables churn); start from
// DefaultDiurnalConfig and override to get the full Twitter-like cycle.
type DiurnalConfig struct {
	// Epochs is the number of snapshots (default 24).
	Epochs int
	// EpochMinutes is each epoch's duration (default 60). Sub-hour epochs
	// expose the per-started-hour billing penalty of churning VMs.
	EpochMinutes int64
	// PeakHour is the hour of day (0–24) of maximum activity; the trough
	// sits 12 hours away.
	PeakHour float64
	// TroughRatio is trough activity over peak activity, in (0, 1].
	TroughRatio float64
	// RateJitterSigma is the σ of the per-topic-per-epoch multiplicative
	// log-normal noise on the modulated rate (0 = smooth curve).
	RateJitterSigma float64
	// ChurnFraction is the fraction of subscribers asleep (empty interest
	// set) at the trough; activity-correlated, so nobody sleeps at peak.
	ChurnFraction float64
	// FlashEpoch, when ≥ 0, multiplies the FlashTopics hottest topics'
	// rates by FlashFactor in that epoch — an off-schedule crowd the
	// static-peak provisioner pays for all day.
	FlashEpoch  int
	FlashTopics int
	FlashFactor float64
	// Seed makes modulation deterministic.
	Seed int64
}

// DefaultDiurnalConfig returns the Twitter-like daily cycle used by the
// diurnal experiments: 24 hourly epochs peaking at 20:00 with a 4× peak-to-
// trough swing, a third of subscribers asleep at the trough, and no flash
// crowd.
func DefaultDiurnalConfig() DiurnalConfig {
	return DiurnalConfig{
		Epochs:          24,
		EpochMinutes:    60,
		PeakHour:        20,
		TroughRatio:     0.25,
		RateJitterSigma: 0.08,
		ChurnFraction:   0.35,
		FlashEpoch:      -1,
		FlashTopics:     0,
		FlashFactor:     1,
		Seed:            11,
	}
}

// withDefaults fills zero fields.
func (c DiurnalConfig) withDefaults() DiurnalConfig {
	d := DefaultDiurnalConfig()
	if c.Epochs == 0 {
		c.Epochs = d.Epochs
	}
	if c.EpochMinutes == 0 {
		c.EpochMinutes = d.EpochMinutes
	}
	if c.TroughRatio == 0 {
		c.TroughRatio = d.TroughRatio
	}
	if c.FlashFactor == 0 {
		c.FlashFactor = 1
	}
	if c.FlashTopics <= 0 && c.FlashEpoch == 0 {
		// The zero value means "no flash crowd", not "flash at epoch 0".
		c.FlashEpoch = -1
	}
	return c
}

// Activity reports the modulation factor g ∈ [TroughRatio, 1] at the given
// hour of day: a raised cosine peaking at PeakHour.
func (c DiurnalConfig) Activity(hourOfDay float64) float64 {
	phase := 2 * math.Pi * (hourOfDay - c.PeakHour) / 24
	return c.TroughRatio + (1-c.TroughRatio)*(1+math.Cos(phase))/2
}

// Diurnal derives an epoch timeline from the base workload. The base is the
// peak snapshot: epoch rates are base rates scaled by the activity curve
// (never below 1 event/hour), and sleeping subscribers keep their IDs with
// emptied interests so the whole timeline shares one identifier space.
func Diurnal(base *workload.Workload, cfg DiurnalConfig) (*timeline.Timeline, error) {
	cfg = cfg.withDefaults()
	if base == nil || base.NumTopics() == 0 || base.NumSubscribers() == 0 {
		return nil, fmt.Errorf("tracegen: diurnal modulation needs a non-empty base workload")
	}
	if cfg.Epochs <= 0 || cfg.EpochMinutes <= 0 {
		return nil, fmt.Errorf("tracegen: need positive Epochs (%d) and EpochMinutes (%d)", cfg.Epochs, cfg.EpochMinutes)
	}
	if cfg.TroughRatio <= 0 || cfg.TroughRatio > 1 {
		return nil, fmt.Errorf("tracegen: TroughRatio %v outside (0, 1]", cfg.TroughRatio)
	}
	if cfg.ChurnFraction < 0 || cfg.ChurnFraction >= 1 {
		return nil, fmt.Errorf("tracegen: ChurnFraction %v outside [0, 1)", cfg.ChurnFraction)
	}
	if cfg.FlashEpoch >= cfg.Epochs {
		return nil, fmt.Errorf("tracegen: FlashEpoch %d outside the %d-epoch horizon", cfg.FlashEpoch, cfg.Epochs)
	}
	if cfg.FlashEpoch >= 0 && (cfg.FlashFactor < 1 || cfg.FlashTopics <= 0) {
		return nil, fmt.Errorf("tracegen: flash crowd needs FlashFactor ≥ 1 (%v) and positive FlashTopics (%d)",
			cfg.FlashFactor, cfg.FlashTopics)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numT, numV := base.NumTopics(), base.NumSubscribers()

	// Each subscriber draws one stable activity rank u_v: v sleeps in every
	// epoch whose asleep fraction exceeds u_v, so sleep sets nest across
	// epochs (night owls drop out last) and day-over-day sleep is stable.
	rank := make([]float64, numV)
	for v := range rank {
		rank[v] = rng.Float64()
	}

	// The flash crowd hits the hottest base topics.
	flash := make(map[workload.TopicID]bool, cfg.FlashTopics)
	if cfg.FlashEpoch >= 0 {
		for _, t := range hottestTopics(base, cfg.FlashTopics) {
			flash[t] = true
		}
	}

	epochs := make([]*workload.Workload, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		hourOfDay := math.Mod(float64(e)*float64(cfg.EpochMinutes)/60, 24)
		g := cfg.Activity(hourOfDay)

		rates := make([]int64, numT)
		for t := 0; t < numT; t++ {
			f := g
			if cfg.RateJitterSigma > 0 {
				f *= math.Exp(rng.NormFloat64() * cfg.RateJitterSigma)
			}
			if f > 1 {
				f = 1 // the base snapshot is the envelope; jitter never exceeds it
			}
			r := int64(math.Round(float64(base.Rate(workload.TopicID(t))) * f))
			if e == cfg.FlashEpoch && flash[workload.TopicID(t)] {
				r = int64(float64(base.Rate(workload.TopicID(t))) * cfg.FlashFactor)
			}
			if r < 1 {
				r = 1
			}
			rates[t] = r
		}

		asleepFrac := cfg.ChurnFraction * (1 - g) / (1 - cfg.TroughRatio)
		if cfg.TroughRatio == 1 {
			asleepFrac = 0
		}
		subOff := make([]int64, 1, numV+1)
		var subTopics []workload.TopicID
		for v := 0; v < numV; v++ {
			if rank[v] >= asleepFrac {
				subTopics = append(subTopics, base.Topics(workload.SubID(v))...)
			}
			subOff = append(subOff, int64(len(subTopics)))
		}

		w, err := workload.FromCSR(rates, subOff, subTopics, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("tracegen: diurnal epoch %d: %w", e, err)
		}
		epochs[e] = w
	}
	return timeline.New(cfg.EpochMinutes, epochs)
}

// hottestTopics returns the n topics with the largest base event rate
// (ties broken by lower ID), without sorting the whole topic set.
func hottestTopics(w *workload.Workload, n int) []workload.TopicID {
	if n > w.NumTopics() {
		n = w.NumTopics()
	}
	out := make([]workload.TopicID, 0, n)
	taken := make(map[workload.TopicID]bool, n)
	for len(out) < n {
		best, bestRate := workload.TopicID(-1), int64(-1)
		for t := 0; t < w.NumTopics(); t++ {
			id := workload.TopicID(t)
			if !taken[id] && w.Rate(id) > bestRate {
				best, bestRate = id, w.Rate(id)
			}
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}
