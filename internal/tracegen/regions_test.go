package tracegen

import (
	"testing"

	"github.com/pubsub-systems/mcss/internal/workload"
)

func regionsBase(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := Random(RandomConfig{
		Topics: 60, Subscribers: 400, MaxFollowings: 6, MaxRate: 150, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTagRegionsDegenerate(t *testing.T) {
	w := regionsBase(t)
	for _, n := range []int{0, 1} {
		got, err := TagRegions(w, n, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("n=%d: workload was copied instead of returned untouched", n)
		}
		if got.HasRegions() {
			t.Fatalf("n=%d: degenerate tagging added region slices", n)
		}
	}
	if _, err := TagRegions(w, 1<<17, 5); err == nil {
		t.Fatal("out-of-range region count accepted")
	}
}

func TestTagRegionsDeterministicAndInRange(t *testing.T) {
	w := regionsBase(t)
	const n = 4
	a, err := TagRegions(w, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TagRegions(w, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasRegions() {
		t.Fatal("tagged workload reports no regions")
	}
	if w.HasRegions() {
		t.Fatal("tagging mutated the input workload")
	}
	counts := make([]int, n)
	for v := 0; v < a.NumSubscribers(); v++ {
		ra := a.SubscriberRegion(workload.SubID(v))
		if ra != b.SubscriberRegion(workload.SubID(v)) {
			t.Fatalf("subscriber %d region differs across identical seeds", v)
		}
		if ra < 0 || ra >= n {
			t.Fatalf("subscriber %d region %d out of range", v, ra)
		}
		counts[ra]++
	}
	for tp := 0; tp < a.NumTopics(); tp++ {
		ra := a.TopicRegion(workload.TopicID(tp))
		if ra != b.TopicRegion(workload.TopicID(tp)) {
			t.Fatalf("topic %d region differs across identical seeds", tp)
		}
		if ra < 0 || ra >= n {
			t.Fatalf("topic %d region %d out of range", tp, ra)
		}
	}
	// The skew makes region 0 the largest subscriber market.
	for r := 1; r < n; r++ {
		if counts[r] > counts[0] {
			t.Fatalf("region %d (%d subs) outgrew home region 0 (%d subs)", r, counts[r], counts[0])
		}
	}
}

func TestTagRegionsPublishersFollowAudience(t *testing.T) {
	// With publishers pinned to the plurality audience region 3/4 of the
	// time, a clear majority of topics must land co-located with their
	// largest market; the exact fraction floats with the skew draw, so the
	// bound is loose.
	w := regionsBase(t)
	a, err := TagRegions(w, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	coloc := 0
	for tp := 0; tp < a.NumTopics(); tp++ {
		id := workload.TopicID(tp)
		counts := map[int]int{}
		best, bestN := 0, -1
		for _, v := range a.Subscribers(id) {
			r := a.SubscriberRegion(v)
			counts[r]++
			if counts[r] > bestN || (counts[r] == bestN && r < best) {
				best, bestN = r, counts[r]
			}
		}
		if a.TopicRegion(id) == best {
			coloc++
		}
	}
	if coloc*2 < a.NumTopics() {
		t.Fatalf("only %d/%d topics co-located with their plurality audience", coloc, a.NumTopics())
	}
}
