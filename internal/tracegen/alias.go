package tracegen

import (
	"errors"
	"math"
	"math/rand"
)

// aliasTable implements Walker's alias method for O(1) sampling from a
// discrete distribution with arbitrary non-negative weights. Building is
// O(n). It is the workhorse behind popularity-weighted topic selection:
// subscribers pick topics proportionally to a heavy-tailed popularity
// weight, which is what produces power-law follower distributions.
type aliasTable struct {
	prob  []float64
	alias []int32
}

var errNoWeights = errors.New("tracegen: alias table needs at least one positive weight")

// newAliasTable builds an alias table over weights. Negative weights are
// treated as zero. It fails when no weight is positive.
func newAliasTable(weights []float64) (*aliasTable, error) {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil, errNoWeights
	}

	t := &aliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scale weights so the mean is exactly 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers get probability 1 of themselves.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// sample draws one index from the distribution.
func (t *aliasTable) sample(rng *rand.Rand) int32 {
	i := int32(rng.Intn(len(t.prob)))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// boundedPareto samples a discrete power-law value in [min, max] with tail
// exponent alpha (> 1) by inverse-transform sampling of a continuous bounded
// Pareto and flooring. Larger alpha means lighter tails.
func boundedPareto(rng *rand.Rand, min, max int64, alpha float64) int64 {
	if min >= max {
		return min
	}
	lo, hi := float64(min), float64(max)+1
	u := rng.Float64()
	// Inverse CDF of bounded Pareto.
	a := 1 - u*(1-math.Pow(lo/hi, alpha-1))
	x := lo / math.Pow(a, 1/(alpha-1))
	v := int64(x)
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}
