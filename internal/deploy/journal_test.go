package deploy_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/deploy"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/tracegen"
	"github.com/pubsub-systems/mcss/internal/traceio"
	"github.com/pubsub-systems/mcss/internal/workload"
)

// These tests live in deploy_test because they exercise the journal with
// the real plan body codec, which lives in traceio (traceio imports
// deploy, so the in-package tests cannot).

func jcfg() core.Config {
	model := pricing.NewModel(pricing.C3Large)
	model.CapacityOverrideBytesPerHour = 600_000
	return core.DefaultConfig(40, model)
}

func jworkload(t testing.TB, seed int64) *workload.Workload {
	t.Helper()
	w, err := tracegen.Random(tracegen.RandomConfig{
		Topics: 12, Subscribers: 40, MaxFollowings: 4, MaxRate: 120, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// jplan solves w against base and wraps the move in a plan.
func jplan(t testing.TB, cfg core.Config, base *deploy.State, w *workload.Workload) *deploy.Plan {
	t.Helper()
	plan, err := deploy.NewPlanner(cfg).Plan(context.Background(), deploy.SpecFromWorkload(w), base)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "apply.journal")
}

// applyJournaled runs a journaled apply of plan from base and returns the
// journal path.
func applyJournaled(t *testing.T, cfg core.Config, base *deploy.State, plan *deploy.Plan, epoch int) string {
	t.Helper()
	path := journalPath(t)
	j, err := traceio.OpenJournal(path, deploy.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := deploy.Snapshot(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSnapshot(int64(epoch)-1, snap); err != nil {
		t.Fatal(err)
	}
	prov, err := base.Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deploy.Apply(context.Background(), plan, prov,
		deploy.WithJournal(j), deploy.WithApplyEpoch(epoch)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalRoundTrip(t *testing.T) {
	cfg := jcfg()
	plan := jplan(t, cfg, nil, jworkload(t, 1))
	path := applyJournaled(t, cfg, deploy.EmptyState(), plan, 0)

	recs, torn, err := deploy.ReadJournalFile(path)
	if err != nil || torn {
		t.Fatalf("clean journal reads torn=%v err=%v", torn, err)
	}
	// snapshot + begin + one step-done per step + commit.
	want := 3 + len(plan.Steps)
	if len(recs) != want {
		t.Fatalf("journal has %d records, want %d", len(recs), want)
	}
	if recs[0].Type != deploy.RecSnapshot || recs[1].Type != deploy.RecPlanBegin ||
		recs[len(recs)-1].Type != deploy.RecPlanCommit {
		t.Fatalf("record shape wrong: %c ... %c", recs[0].Type, recs[len(recs)-1].Type)
	}

	rec, err := traceio.RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.InFlight != nil || rec.Committed != 1 || rec.Snapshots != 1 {
		t.Fatalf("recovery: inflight=%v committed=%d snapshots=%d", rec.InFlight, rec.Committed, rec.Snapshots)
	}
	if got, want := rec.State.Fingerprint(), plan.TargetFingerprint(); got != want {
		t.Fatalf("recovered %s, want target %s", got, want)
	}
	if rec.Epoch != 0 {
		t.Fatalf("recovered epoch %d, want 0", rec.Epoch)
	}
	if rec.Model.Instance.Name == "" {
		t.Fatal("recovery dropped the pricing model")
	}
}

// TestJournalTornTail: bytes cut mid-record are the normal crash artifact —
// reads drop the tail and report torn, reopening truncates it away, and
// appends continue from the valid prefix.
func TestJournalTornTail(t *testing.T) {
	cfg := jcfg()
	plan := jplan(t, cfg, nil, jworkload(t, 2))
	path := applyJournaled(t, cfg, deploy.EmptyState(), plan, 0)

	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := deploy.ReadJournalFile(path)
	if err != nil {
		t.Fatalf("torn tail must not be corruption: %v", err)
	}
	if !torn {
		t.Fatal("torn tail not reported")
	}
	// The commit record was torn off: recovery resumes the plan.
	rec, err := deploy.Recover(recs, torn, traceio.PlanJournalCodec())
	if err != nil {
		t.Fatal(err)
	}
	if rec.InFlight == nil || rec.NextStep != len(plan.Steps) {
		t.Fatalf("torn-commit recovery: inflight=%v next=%d, want open plan at %d",
			rec.InFlight != nil, rec.NextStep, len(plan.Steps))
	}

	// Reopen truncates the tail; the journal accepts appends again.
	j, err := traceio.OpenJournal(path, deploy.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPlanCommit(0, plan.TargetFingerprint()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err = traceio.RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.InFlight != nil || rec.State.Fingerprint() != plan.TargetFingerprint() {
		t.Fatal("re-appended commit did not close the plan")
	}
}

// TestJournalCorruption: a flipped payload byte is ErrCorruptJournal, and
// recovery still returns the state the valid prefix establishes.
func TestJournalCorruption(t *testing.T) {
	cfg := jcfg()
	plan := jplan(t, cfg, nil, jworkload(t, 3))
	path := applyJournaled(t, cfg, deploy.EmptyState(), plan, 0)

	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-1] ^= 0xFF // inside the commit record's payload
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := deploy.ReadJournalFile(path)
	if !errors.Is(err, deploy.ErrCorruptJournal) {
		t.Fatalf("flipped byte read as torn=%v err=%v, want ErrCorruptJournal", torn, err)
	}
	if len(recs) != 2+len(plan.Steps) {
		t.Fatalf("prefix records %d, want %d", len(recs), 2+len(plan.Steps))
	}
	rec, rerr := traceio.RecoverJournal(path)
	if !errors.Is(rerr, deploy.ErrCorruptJournal) {
		t.Fatalf("recovery err %v, want ErrCorruptJournal", rerr)
	}
	if rec == nil || rec.InFlight == nil {
		t.Fatal("partial recovery must still surface the in-flight plan")
	}
	if got, want := rec.State.Fingerprint(), plan.BaseFingerprint; got != want {
		t.Fatalf("partial recovery state %s, want base %s", got, want)
	}

	// OpenJournal refuses a corrupt file rather than appending after damage.
	if _, err := traceio.OpenJournal(path, deploy.JournalOptions{}); !errors.Is(err, deploy.ErrCorruptJournal) {
		t.Fatalf("open on corrupt journal: %v, want ErrCorruptJournal", err)
	}
}

// TestRecoverChainViolations: structurally valid records whose fingerprint
// chain is broken are corruption, not state.
func TestRecoverChainViolations(t *testing.T) {
	cfg := jcfg()
	plan := jplan(t, cfg, nil, jworkload(t, 4))
	codec := traceio.PlanJournalCodec()
	body, err := codec.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		recs []deploy.Record
	}{
		{"begin does not extend state", []deploy.Record{
			{Type: deploy.RecPlanBegin, Fingerprint: "bogus-base", Body: body},
		}},
		{"step-done outside a plan", []deploy.Record{
			{Type: deploy.RecStepDone, Step: 0},
		}},
		{"step-done out of order", []deploy.Record{
			{Type: deploy.RecPlanBegin, Fingerprint: plan.BaseFingerprint, Body: body},
			{Type: deploy.RecStepDone, Step: 1},
		}},
		{"commit fingerprint mismatch", []deploy.Record{
			{Type: deploy.RecPlanBegin, Fingerprint: plan.BaseFingerprint, Body: body},
			{Type: deploy.RecPlanCommit, Fingerprint: "not-the-target"},
		}},
		{"abort fingerprint mismatch", []deploy.Record{
			{Type: deploy.RecPlanBegin, Fingerprint: plan.BaseFingerprint, Body: body},
			{Type: deploy.RecPlanAbort, Fingerprint: "not-the-base"},
		}},
		{"begin inside open plan", []deploy.Record{
			{Type: deploy.RecPlanBegin, Fingerprint: plan.BaseFingerprint, Body: body},
			{Type: deploy.RecPlanBegin, Fingerprint: plan.BaseFingerprint, Body: body},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := deploy.Recover(tc.recs, false, codec); !errors.Is(err, deploy.ErrCorruptJournal) {
				t.Fatalf("got %v, want ErrCorruptJournal", err)
			}
		})
	}
}

func TestJournalCompact(t *testing.T) {
	cfg := jcfg()
	plan := jplan(t, cfg, nil, jworkload(t, 5))
	path := applyJournaled(t, cfg, deploy.EmptyState(), plan, 0)

	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	j, err := traceio.OpenJournal(path, deploy.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := deploy.Snapshot(cfg, plan.Target)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(0, snap); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction grew the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends after compaction land in the replacement file.
	plan2 := jplan(t, cfg, plan.Target, jworkload(t, 6))
	if err := j.AppendPlanBegin(1, plan2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := traceio.RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshots != 1 || rec.State.Fingerprint() != plan.TargetFingerprint() {
		t.Fatalf("compacted recovery: snapshots=%d fp=%s", rec.Snapshots, rec.State.Fingerprint())
	}
	if rec.InFlight == nil || rec.InFlightEpoch != 1 {
		t.Fatal("post-compaction begin record lost")
	}
}

// TestCrashResumeProperty is the crash-safety property test: for every
// crash point i of a journaled apply, killing the apply after step i-1's
// record and resuming from the recovered journal must land on exactly the
// state an uninterrupted apply reaches, executing every step's effect
// exactly once across both legs.
func TestCrashResumeProperty(t *testing.T) {
	cfg := jcfg()
	ctx := context.Background()
	for seed := int64(1); seed <= 2; seed++ {
		// Chain two plans so resume is exercised from the empty base and
		// from a populated one.
		bootstrap := jplan(t, cfg, nil, jworkload(t, seed))
		followup := jplan(t, cfg, bootstrap.Target, jworkload(t, seed+100))
		chain := []struct {
			base *deploy.State
			plan *deploy.Plan
		}{
			{deploy.EmptyState(), bootstrap},
			{bootstrap.Target, followup},
		}
		for ci, link := range chain {
			// The uninterrupted apply's destination is the oracle.
			wantFP := link.plan.TargetFingerprint()
			steps := len(link.plan.Steps)
			if steps == 0 {
				t.Fatalf("seed %d link %d: plan has no steps", seed, ci)
			}
			for i := 0; i < steps; i++ {
				name := fmt.Sprintf("seed=%d/link=%d/crash=%d", seed, ci, i)
				path := journalPath(t)
				effects := deploy.NewEffectLog()

				j, err := traceio.OpenJournal(path, deploy.JournalOptions{})
				if err != nil {
					t.Fatal(err)
				}
				snap, err := deploy.Snapshot(cfg, link.base)
				if err != nil {
					t.Fatal(err)
				}
				if err := j.AppendSnapshot(-1, snap); err != nil {
					t.Fatal(err)
				}
				prov, err := link.base.Provisioner(cfg)
				if err != nil {
					t.Fatal(err)
				}
				crashExec := deploy.NewFaultInjector(deploy.NopExecutor, deploy.FaultConfig{
					Crash: true, CrashAtStep: i, Effects: effects,
				})
				_, aerr := deploy.Apply(ctx, link.plan, prov,
					deploy.WithJournal(j), deploy.WithExecutor(crashExec), deploy.WithApplyEpoch(ci))
				if !errors.Is(aerr, deploy.ErrSimulatedCrash) {
					t.Fatalf("%s: want simulated crash, got %v", name, aerr)
				}
				j.Close()

				rec, err := traceio.RecoverJournal(path)
				if err != nil {
					t.Fatalf("%s: recover: %v", name, err)
				}
				if rec.InFlight == nil || rec.NextStep != i {
					t.Fatalf("%s: recovery next=%d inflight=%v, want resume at %d",
						name, rec.NextStep, rec.InFlight != nil, i)
				}
				prov2, err := rec.State.Provisioner(cfg)
				if err != nil {
					t.Fatal(err)
				}
				j2, err := traceio.OpenJournal(path, deploy.JournalOptions{})
				if err != nil {
					t.Fatal(err)
				}
				resumeExec := deploy.NewFaultInjector(deploy.NopExecutor, deploy.FaultConfig{Effects: effects})
				if _, err := deploy.Apply(ctx, rec.InFlight, prov2,
					deploy.WithJournal(j2), deploy.WithExecutor(resumeExec),
					deploy.WithApplyEpoch(ci), deploy.ResumeFrom(rec.NextStep)); err != nil {
					t.Fatalf("%s: resume: %v", name, err)
				}
				if err := j2.Close(); err != nil {
					t.Fatal(err)
				}

				if got := deploy.StateOf(prov2).Fingerprint(); got != wantFP {
					t.Fatalf("%s: resumed to %s, uninterrupted apply reaches %s", name, got, wantFP)
				}
				for s := 0; s < steps; s++ {
					if n := effects.Executions(s); n != 1 {
						t.Fatalf("%s: step %d effect executed %d times", name, s, n)
					}
				}
				if err := core.VerifyServes(link.plan.Target.Workload, prov2.Allocation(), cfg); err != nil {
					t.Fatalf("%s: verify: %v", name, err)
				}
			}
		}
	}
}

// TestChaosApplySweep is the in-repo edition of `simulate -chaos-apply`:
// 200 seeded cases mixing transient step failures with mid-apply crashes,
// all of which must recover to the exact target with exactly-once effects.
func TestChaosApplySweep(t *testing.T) {
	cfg := jcfg()
	ctx := context.Background()
	bootstrap := jplan(t, cfg, nil, jworkload(t, 11))
	followup := jplan(t, cfg, bootstrap.Target, jworkload(t, 12))
	links := []struct {
		base *deploy.State
		plan *deploy.Plan
	}{
		{deploy.EmptyState(), bootstrap},
		{bootstrap.Target, followup},
	}

	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	noSleep := func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	for c := 0; c < 200; c++ {
		link := links[rng.Intn(len(links))]
		steps := len(link.plan.Steps)
		k := rng.Intn(steps + 1) // == steps: no crash, transient faults only
		crash := k < steps
		path := filepath.Join(dir, fmt.Sprintf("case-%d.journal", c))
		effects := deploy.NewEffectLog()
		seed := int64(c)*7919 + 1

		mkExec := func(seed int64, crash bool) deploy.Executor {
			inj := deploy.NewFaultInjector(deploy.NopExecutor, deploy.FaultConfig{
				FailProb: 0.2, Crash: crash, CrashAtStep: k, Seed: seed, Effects: effects,
			})
			return deploy.NewRetryExecutor(inj, deploy.RetryConfig{MaxAttempts: 8, Seed: seed, Sleep: noSleep})
		}

		j, err := traceio.OpenJournal(path, deploy.JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := deploy.Snapshot(cfg, link.base)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.AppendSnapshot(-1, snap); err != nil {
			t.Fatal(err)
		}
		prov, err := link.base.Provisioner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, aerr := deploy.Apply(ctx, link.plan, prov,
			deploy.WithJournal(j), deploy.WithExecutor(mkExec(seed, crash)))
		if crash {
			if !errors.Is(aerr, deploy.ErrSimulatedCrash) {
				t.Fatalf("case %d: want crash, got %v", c, aerr)
			}
			j.Close()
			rec, err := traceio.RecoverJournal(path)
			if err != nil {
				t.Fatalf("case %d: recover: %v", c, err)
			}
			prov, err = rec.State.Provisioner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			j, err = traceio.OpenJournal(path, deploy.JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			_, aerr = deploy.Apply(ctx, rec.InFlight, prov,
				deploy.WithJournal(j), deploy.WithExecutor(mkExec(seed+1, false)),
				deploy.ResumeFrom(rec.NextStep))
		}
		if aerr != nil {
			t.Fatalf("case %d: apply: %v", c, aerr)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if got, want := deploy.StateOf(prov).Fingerprint(), link.plan.TargetFingerprint(); got != want {
			t.Fatalf("case %d: verify failure — landed on %s, want %s", c, got, want)
		}
		if effects.MaxPerStep() > 1 {
			t.Fatalf("case %d: duplicate step effect (max %d)", c, effects.MaxPerStep())
		}
		if effects.Total() != steps {
			t.Fatalf("case %d: %d effects for %d steps", c, effects.Total(), steps)
		}
	}
}

// BenchmarkJournalReplay measures recovery time as a function of journal
// length — the numbers EXPERIMENTS.md quotes for the recovery section.
func BenchmarkJournalReplay(b *testing.B) {
	cfg := jcfg()
	ctx := context.Background()
	w1 := jworkload(b, 21)
	w2 := jworkload(b, 22)
	planner := deploy.NewPlanner(cfg)
	boot, err := planner.Plan(ctx, deploy.SpecFromWorkload(w1), nil)
	if err != nil {
		b.Fatal(err)
	}
	// Two plans ping-ponging between the same two states let the journal
	// grow to any length while keeping the fingerprint chain valid.
	forward, err := planner.Plan(ctx, deploy.SpecFromWorkload(w2), boot.Target)
	if err != nil {
		b.Fatal(err)
	}
	backward, err := deploy.NewPlan(cfg, forward.Target, boot.Target)
	if err != nil {
		b.Fatal(err)
	}

	for _, plans := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("plans=%d", plans), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "apply.journal")
			j, err := traceio.OpenJournal(path, deploy.JournalOptions{SyncEvery: 64})
			if err != nil {
				b.Fatal(err)
			}
			snap, err := deploy.Snapshot(cfg, boot.Target)
			if err != nil {
				b.Fatal(err)
			}
			if err := j.AppendSnapshot(-1, snap); err != nil {
				b.Fatal(err)
			}
			records := 1
			for p := 0; p < plans; p++ {
				plan := forward
				if p%2 == 1 {
					plan = backward
				}
				if err := j.AppendPlanBegin(int64(p), plan); err != nil {
					b.Fatal(err)
				}
				for s := range plan.Steps {
					if err := j.AppendStepDone(int64(p), s); err != nil {
						b.Fatal(err)
					}
				}
				if err := j.AppendPlanCommit(int64(p), plan.TargetFingerprint()); err != nil {
					b.Fatal(err)
				}
				records += 2 + len(plan.Steps)
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ReportMetric(float64(records), "records")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, torn, err := deploy.ReadJournal(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				rec, err := deploy.Recover(recs, torn, traceio.PlanJournalCodec())
				if err != nil {
					b.Fatal(err)
				}
				if rec.Committed != plans {
					b.Fatalf("recovered %d commits, want %d", rec.Committed, plans)
				}
			}
		})
	}
}
