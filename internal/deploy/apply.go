package deploy

import (
	"context"
	"errors"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/dynamic"
	"github.com/pubsub-systems/mcss/internal/pricing"
)

// ErrAborted reports an apply the configured Observer stopped. It wraps
// the observer's own error, so callers can distinguish
// aborted-and-rolled-back (errors.Is(err, ErrAborted)) from a step whose
// execution failed (ErrStepFailed) — both leave the provisioner on its
// pre-apply state.
var ErrAborted = errors.New("deploy: apply aborted by observer")

// Observer receives per-step progress during Apply. OnStep fires before
// step i (0-based of total) executes; returning a non-nil error aborts the
// apply — the hook an interactive approval gate or a deadline budget uses
// — and the provisioner rolls back to its pre-apply state. Callbacks fire
// from the calling goroutine.
type Observer interface {
	OnStep(i, total int, s dynamic.Step) error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(i, total int, s dynamic.Step) error

// OnStep implements Observer.
func (f ObserverFunc) OnStep(i, total int, s dynamic.Step) error { return f(i, total, s) }

// ApplyOption configures one Apply call.
type ApplyOption func(*applyOptions)

type applyOptions struct {
	dryRun     bool
	obs        Observer
	exec       Executor
	journal    *Journal
	epoch      int64
	resume     bool
	resumeFrom int
}

// DryRun validates and replays the plan — fingerprint check, every step,
// target verification — but leaves the provisioner untouched: the "would
// this apply cleanly right now?" probe.
func DryRun() ApplyOption {
	return func(o *applyOptions) { o.dryRun = true }
}

// WithObserver streams per-step progress to obs during Apply.
func WithObserver(obs Observer) ApplyOption {
	return func(o *applyOptions) { o.obs = obs }
}

// WithExecutor performs each step's external effect through exec before
// the in-memory state advances. Executor failures abort the apply with
// ErrStepFailed (and roll back), except ErrSimulatedCrash, which
// propagates verbatim and leaves any journal mid-plan — the crash model.
// Dry runs never execute.
func WithExecutor(exec Executor) ApplyOption {
	return func(o *applyOptions) { o.exec = exec }
}

// WithJournal makes the apply durable: plan-begin before the first step,
// step-done after each step's effect, plan-commit after verification,
// plan-abort on clean failure. A context cancellation or simulated crash
// writes no abort record, so recovery resumes the plan. Dry runs never
// journal.
func WithJournal(j *Journal) ApplyOption {
	return func(o *applyOptions) { o.journal = j }
}

// WithApplyEpoch tags this apply's journal records with the controller
// epoch (untagged applies record -1).
func WithApplyEpoch(epoch int) ApplyOption {
	return func(o *applyOptions) { o.epoch = int64(epoch) }
}

// ResumeFrom continues a half-applied plan after a crash: steps before
// next replay against the working copy only (their effects already
// landed and were journaled — no executor, no observer, no step-done
// records), execution restarts at step next, and no fresh plan-begin
// record is written. Pair it with Recovery.NextStep.
func ResumeFrom(next int) ApplyOption {
	return func(o *applyOptions) {
		o.resume = true
		o.resumeFrom = next
	}
}

// Report summarizes one Apply.
type Report struct {
	// DryRun echoes whether the provisioner was left untouched.
	DryRun bool
	// StepsApplied counts executed steps (all of them on success).
	StepsApplied int
	// Stats is the realized churn from the pre-apply allocation to the
	// applied one, with cost and fleet-size fields filled.
	Stats dynamic.MigrationStats
	// Cost is the applied allocation's cost under the plan's model —
	// equal to the plan's CostAfter forecast by construction.
	Cost pricing.MicroUSD
}

// Apply executes a plan against the provisioner: it validates the plan,
// refuses with ErrStalePlan when the provisioner's state no longer matches
// the plan's base fingerprint, replays the step sequence (reporting each
// step to the configured Observer), verifies the replayed state against
// the plan's own target fingerprint, and only then installs the new
// workload and allocation. On any mid-apply failure — a bad step, a
// cancelled context, an observer abort, a target mismatch — the
// provisioner keeps its pre-apply workload and allocation: steps execute
// against a private working copy, so rollback is the default, not a
// recovery action.
func Apply(ctx context.Context, plan *Plan, prov *dynamic.Provisioner, opts ...ApplyOption) (*Report, error) {
	o := applyOptions{epoch: -1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if prov == nil {
		return nil, fmt.Errorf("%w: apply needs a provisioner (restore one from the current state)", ErrInvalidPlan)
	}
	pre := StateOf(prov)
	if fp := pre.Fingerprint(); fp != plan.BaseFingerprint {
		return nil, fmt.Errorf("%w: cluster state is %s, plan was computed against %s",
			ErrStalePlan, fp, plan.BaseFingerprint)
	}

	// Replay the steps one at a time against a working copy so the
	// observer sees real progress and a failure at step k leaves the
	// provisioner exactly as it was. The replayer also reprices kept
	// placements to the target workload's rates.
	replayer, err := dynamic.NewReplayer(pre.Allocation, plan.Target.Workload, plan.MessageBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}
	journaling := o.journal != nil && !o.dryRun
	// abort closes the journal's open plan with a plan-abort record —
	// recovery then keeps the base state instead of resuming — and
	// returns err. Crash-like exits (context death, simulated crash)
	// bypass it so the journal stays mid-plan and resumable.
	abort := func(err error) (*Report, error) {
		if journaling {
			if jerr := o.journal.AppendPlanAbort(o.epoch, plan.BaseFingerprint); jerr != nil {
				err = fmt.Errorf("%w (journal abort record failed: %v)", err, jerr)
			}
		}
		return nil, err
	}
	if journaling && !o.resume {
		if err := o.journal.AppendPlanBegin(o.epoch, plan); err != nil {
			return nil, fmt.Errorf("deploy: journal plan-begin: %w", err)
		}
	}
	total := len(plan.Steps)
	for i, s := range plan.Steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.resume && i < o.resumeFrom {
			// This step's effect landed before the crash (its
			// step-done record is durable); replay state only.
			if err := replayer.Apply(s); err != nil {
				return abort(fmt.Errorf("%w: %v", ErrInvalidPlan, err))
			}
			continue
		}
		if o.obs != nil {
			if err := o.obs.OnStep(i, total, s); err != nil {
				return abort(fmt.Errorf("%w: step %d/%d (%s): %w", ErrAborted, i, total, s, err))
			}
		}
		if o.exec != nil && !o.dryRun {
			if err := o.exec.Execute(ctx, i, total, s); err != nil {
				if errors.Is(err, ErrSimulatedCrash) {
					return nil, err
				}
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				if !errors.Is(err, ErrStepFailed) {
					err = fmt.Errorf("%w: step %d/%d (%s): %w", ErrStepFailed, i, total, s, err)
				}
				return abort(err)
			}
		}
		if err := replayer.Apply(s); err != nil {
			return abort(fmt.Errorf("%w: %v", ErrInvalidPlan, err))
		}
		if journaling {
			if err := o.journal.AppendStepDone(o.epoch, i); err != nil {
				return nil, fmt.Errorf("deploy: journal step-done: %w", err)
			}
		}
	}
	work, err := replayer.Finish()
	if err != nil {
		return abort(fmt.Errorf("%w: %v", ErrInvalidPlan, err))
	}
	work.Fleet = plan.Fleet

	// The replayed state must be the plan's own target: a plan whose
	// steps do not reproduce its target is invalid, not just stale.
	if got, want := dynamic.StateFingerprint(plan.Target.Workload, work), plan.TargetFingerprint(); got != want {
		return abort(fmt.Errorf("%w: steps replay to %s, target is %s", ErrInvalidPlan, got, want))
	}

	stats := dynamic.MigrationStatsBetween(pre.Allocation, work, plan.Model)
	report := &Report{
		DryRun:       o.dryRun,
		StepsApplied: total,
		Stats:        stats,
		Cost:         stats.CostAfter,
	}
	if o.dryRun {
		return report, nil
	}

	// Adopt the plan's own target allocation when the replay proves it
	// faithful (the fingerprint pins instances and placements; the extra
	// accounting check below covers the derived fields the fingerprint
	// deliberately excludes). Pointer identity with the planner's target
	// is what lets a persistent incremental index survive a plan-mediated
	// adoption instead of reindexing every epoch. A hand-crafted plan
	// whose target carries stale accounting falls back to the replayed
	// copy.
	adopt := work
	if t := plan.Target.Allocation; accountingMatches(t, work) && !t.Fleet.IsZero() {
		adopt = t
	}
	sel, err := core.SelectionFromPairs(plan.Target.Workload, placedPairs(work))
	if err != nil {
		return abort(fmt.Errorf("%w: %v", ErrInvalidPlan, err))
	}
	// Commit is journaled before the in-memory adoption: once the commit
	// record is durable, a crash on either side of Adopt recovers to the
	// plan's target.
	if journaling {
		if err := o.journal.AppendPlanCommit(o.epoch, plan.TargetFingerprint()); err != nil {
			return nil, fmt.Errorf("deploy: journal plan-commit: %w", err)
		}
	}
	prov.Adopt(plan.Target.Workload, &core.Result{Selection: sel, Allocation: adopt})
	return report, nil
}

// accountingMatches reports whether two allocations with fingerprint-equal
// placements also agree on the derived per-VM bandwidth accounting.
func accountingMatches(a, b *core.Allocation) bool {
	if a == nil || len(a.VMs) != len(b.VMs) {
		return false
	}
	for i, vm := range a.VMs {
		o := b.VMs[i]
		if vm.InBytesPerHour != o.InBytesPerHour || vm.OutBytesPerHour != o.OutBytesPerHour ||
			vm.CapacityBytesPerHour != o.CapacityBytesPerHour || vm.Instance != o.Instance {
			return false
		}
	}
	return true
}
