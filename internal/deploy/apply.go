package deploy

import (
	"context"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/dynamic"
	"github.com/pubsub-systems/mcss/internal/pricing"
)

// Observer receives per-step progress during Apply. OnStep fires before
// step i (0-based of total) executes; returning a non-nil error aborts the
// apply — the hook an interactive approval gate or a deadline budget uses
// — and the provisioner rolls back to its pre-apply state. Callbacks fire
// from the calling goroutine.
type Observer interface {
	OnStep(i, total int, s dynamic.Step) error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(i, total int, s dynamic.Step) error

// OnStep implements Observer.
func (f ObserverFunc) OnStep(i, total int, s dynamic.Step) error { return f(i, total, s) }

// ApplyOption configures one Apply call.
type ApplyOption func(*applyOptions)

type applyOptions struct {
	dryRun bool
	obs    Observer
}

// DryRun validates and replays the plan — fingerprint check, every step,
// target verification — but leaves the provisioner untouched: the "would
// this apply cleanly right now?" probe.
func DryRun() ApplyOption {
	return func(o *applyOptions) { o.dryRun = true }
}

// WithObserver streams per-step progress to obs during Apply.
func WithObserver(obs Observer) ApplyOption {
	return func(o *applyOptions) { o.obs = obs }
}

// Report summarizes one Apply.
type Report struct {
	// DryRun echoes whether the provisioner was left untouched.
	DryRun bool
	// StepsApplied counts executed steps (all of them on success).
	StepsApplied int
	// Stats is the realized churn from the pre-apply allocation to the
	// applied one, with cost and fleet-size fields filled.
	Stats dynamic.MigrationStats
	// Cost is the applied allocation's cost under the plan's model —
	// equal to the plan's CostAfter forecast by construction.
	Cost pricing.MicroUSD
}

// Apply executes a plan against the provisioner: it validates the plan,
// refuses with ErrStalePlan when the provisioner's state no longer matches
// the plan's base fingerprint, replays the step sequence (reporting each
// step to the configured Observer), verifies the replayed state against
// the plan's own target fingerprint, and only then installs the new
// workload and allocation. On any mid-apply failure — a bad step, a
// cancelled context, an observer abort, a target mismatch — the
// provisioner keeps its pre-apply workload and allocation: steps execute
// against a private working copy, so rollback is the default, not a
// recovery action.
func Apply(ctx context.Context, plan *Plan, prov *dynamic.Provisioner, opts ...ApplyOption) (*Report, error) {
	var o applyOptions
	for _, opt := range opts {
		opt(&o)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if prov == nil {
		return nil, fmt.Errorf("%w: apply needs a provisioner (restore one from the current state)", ErrInvalidPlan)
	}
	pre := StateOf(prov)
	if fp := pre.Fingerprint(); fp != plan.BaseFingerprint {
		return nil, fmt.Errorf("%w: cluster state is %s, plan was computed against %s",
			ErrStalePlan, fp, plan.BaseFingerprint)
	}

	// Replay the steps one at a time against a working copy so the
	// observer sees real progress and a failure at step k leaves the
	// provisioner exactly as it was. The replayer also reprices kept
	// placements to the target workload's rates.
	replayer, err := dynamic.NewReplayer(pre.Allocation, plan.Target.Workload, plan.MessageBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}
	total := len(plan.Steps)
	for i, s := range plan.Steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.obs != nil {
			if err := o.obs.OnStep(i, total, s); err != nil {
				return nil, fmt.Errorf("deploy: aborted at step %d/%d (%s): %w", i, total, s, err)
			}
		}
		if err := replayer.Apply(s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
		}
	}
	work, err := replayer.Finish()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}
	work.Fleet = plan.Fleet

	// The replayed state must be the plan's own target: a plan whose
	// steps do not reproduce its target is invalid, not just stale.
	if got, want := dynamic.StateFingerprint(plan.Target.Workload, work), plan.TargetFingerprint(); got != want {
		return nil, fmt.Errorf("%w: steps replay to %s, target is %s", ErrInvalidPlan, got, want)
	}

	stats := dynamic.MigrationStatsBetween(pre.Allocation, work, plan.Model)
	report := &Report{
		DryRun:       o.dryRun,
		StepsApplied: total,
		Stats:        stats,
		Cost:         stats.CostAfter,
	}
	if o.dryRun {
		return report, nil
	}

	// Adopt the plan's own target allocation when the replay proves it
	// faithful (the fingerprint pins instances and placements; the extra
	// accounting check below covers the derived fields the fingerprint
	// deliberately excludes). Pointer identity with the planner's target
	// is what lets a persistent incremental index survive a plan-mediated
	// adoption instead of reindexing every epoch. A hand-crafted plan
	// whose target carries stale accounting falls back to the replayed
	// copy.
	adopt := work
	if t := plan.Target.Allocation; accountingMatches(t, work) && !t.Fleet.IsZero() {
		adopt = t
	}
	sel, err := core.SelectionFromPairs(plan.Target.Workload, placedPairs(work))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}
	prov.Adopt(plan.Target.Workload, &core.Result{Selection: sel, Allocation: adopt})
	return report, nil
}

// accountingMatches reports whether two allocations with fingerprint-equal
// placements also agree on the derived per-VM bandwidth accounting.
func accountingMatches(a, b *core.Allocation) bool {
	if a == nil || len(a.VMs) != len(b.VMs) {
		return false
	}
	for i, vm := range a.VMs {
		o := b.VMs[i]
		if vm.InBytesPerHour != o.InBytesPerHour || vm.OutBytesPerHour != o.OutBytesPerHour ||
			vm.CapacityBytesPerHour != o.CapacityBytesPerHour || vm.Instance != o.Instance {
			return false
		}
	}
	return true
}
