package deploy

import (
	"context"
	"errors"
	"testing"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/dynamic"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/tracegen"
	"github.com/pubsub-systems/mcss/internal/workload"
)

func testConfig() core.Config {
	model := pricing.NewModel(pricing.C3Large)
	model.CapacityOverrideBytesPerHour = 600_000
	return core.DefaultConfig(40, model)
}

func testWorkload(t *testing.T, seed int64) *workload.Workload {
	t.Helper()
	w, err := tracegen.Random(tracegen.RandomConfig{
		Topics: 12, Subscribers: 40, MaxFollowings: 4, MaxRate: 120, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestBootstrapPlanApply drives the full lifecycle from the empty cluster:
// plan, apply, and check that the realized cost and churn equal the
// forecast.
func TestBootstrapPlanApply(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 1)
	ctx := context.Background()

	plan, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IsNoop() {
		t.Fatal("bootstrap plan is a no-op")
	}
	if plan.CostBefore != 0 {
		t.Fatalf("empty cluster costs %v", plan.CostBefore)
	}
	if plan.BaseFingerprint != EmptyState().Fingerprint() {
		t.Fatal("bootstrap plan not pinned to the empty state")
	}

	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Apply(ctx, plan, prov)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != plan.CostAfter {
		t.Fatalf("applied cost %v != forecast %v", rep.Cost, plan.CostAfter)
	}
	if prov.Cost() != plan.CostAfter {
		t.Fatalf("provisioner cost %v != forecast %v", prov.Cost(), plan.CostAfter)
	}
	if got := StateOf(prov).Fingerprint(); got != plan.TargetFingerprint() {
		t.Fatalf("post-apply fingerprint %s != plan target %s", got, plan.TargetFingerprint())
	}
	if rep.Stats.PairsMoved != plan.Diff.Stats.PairsMoved || rep.Stats.PairsKept != plan.Diff.Stats.PairsKept {
		t.Fatalf("realized churn %+v != forecast %+v", rep.Stats, plan.Diff.Stats)
	}
	// The adopted state passes the solver's own verifier.
	if err := core.VerifyAllocation(w, prov.Selection(), prov.Allocation(), cfg); err != nil {
		t.Fatalf("applied allocation fails verification: %v", err)
	}
}

// TestReconfigurePlanApply plans a drift (rates + churned interests) on a
// running cluster and applies it; a second apply of the same plan must
// fail with ErrStalePlan because the state moved.
func TestReconfigurePlanApply(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 2)
	ctx := context.Background()
	planner := NewPlanner(cfg)

	boot, err := planner.Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(ctx, boot, prov); err != nil {
		t.Fatal(err)
	}

	next, err := dynamic.ApplyDelta(w, dynamic.Delta{
		NewTopics:      []int64{75},
		NewSubscribers: 3,
		RateChanges:    map[workload.TopicID]int64{0: 500},
		Subscribe: []workload.Pair{
			{Topic: workload.TopicID(w.NumTopics()), Sub: workload.SubID(w.NumSubscribers())},
			{Topic: 2, Sub: workload.SubID(w.NumSubscribers() + 1)},
			{Topic: 0, Sub: workload.SubID(w.NumSubscribers() + 2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.Plan(ctx, SpecFromWorkload(next), StateOf(prov))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plan.Diff.Delta.NewTopics); n != 1 {
		t.Fatalf("diff has %d new topics, want 1", n)
	}
	rep, err := Apply(ctx, plan, prov)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != plan.CostAfter || prov.Cost() != plan.CostAfter {
		t.Fatalf("applied cost %v (prov %v) != forecast %v", rep.Cost, prov.Cost(), plan.CostAfter)
	}
	// Same plan again: the fingerprint moved with the apply.
	if _, err := Apply(ctx, plan, prov); !errors.Is(err, ErrStalePlan) {
		t.Fatalf("re-apply returned %v, want ErrStalePlan", err)
	}
}

// TestApplyDryRun verifies a dry run reports the forecast without touching
// the provisioner, and that the real apply still succeeds afterwards.
func TestApplyDryRun(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 3)
	ctx := context.Background()
	plan, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := StateOf(prov).Fingerprint()
	rep, err := Apply(ctx, plan, prov, DryRun())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DryRun || rep.Cost != plan.CostAfter {
		t.Fatalf("dry-run report %+v", rep)
	}
	if StateOf(prov).Fingerprint() != fp {
		t.Fatal("dry run mutated the provisioner")
	}
	if _, err := Apply(ctx, plan, prov); err != nil {
		t.Fatalf("real apply after dry run: %v", err)
	}
}

// TestApplyObserverAbortRollsBack aborts mid-apply from the observer and
// checks the provisioner is left at its pre-apply state.
func TestApplyObserverAbortRollsBack(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 4)
	ctx := context.Background()
	plan, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) < 2 {
		t.Skip("plan too small to abort mid-way")
	}
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := StateOf(prov).Fingerprint()
	boom := errors.New("operator said no")
	var seen int
	_, err = Apply(ctx, plan, prov, WithObserver(ObserverFunc(func(i, total int, s dynamic.Step) error {
		seen++
		if i >= 1 {
			return boom
		}
		return nil
	})))
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want observer abort", err)
	}
	if seen != 2 {
		t.Fatalf("observer fired %d times, want 2", seen)
	}
	if StateOf(prov).Fingerprint() != fp {
		t.Fatal("aborted apply mutated the provisioner")
	}
}

// TestApplyCancelledContext: cancellation mid-apply rolls back too.
func TestApplyCancelledContext(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 5)
	plan, err := NewPlanner(cfg).Plan(context.Background(), SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := StateOf(prov).Fingerprint()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Apply(ctx, plan, prov); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if StateOf(prov).Fingerprint() != fp {
		t.Fatal("cancelled apply mutated the provisioner")
	}
}

// TestApplyRejectsTamperedPlan: a plan whose steps no longer reproduce its
// target fails closed with ErrInvalidPlan.
func TestApplyRejectsTamperedPlan(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 6)
	ctx := context.Background()
	plan, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last step: the replay diverges from the target.
	plan.Steps = plan.Steps[:len(plan.Steps)-1]
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(ctx, plan, prov); !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("got %v, want ErrInvalidPlan", err)
	}
}

// TestPlanValidate covers the structural rejections.
func TestPlanValidate(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 7)
	good, err := NewPlanner(cfg).Plan(context.Background(), SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		fn   func(p *Plan)
	}{
		{"wrong version", func(p *Plan) { p.Version = 99 }},
		{"no fingerprint", func(p *Plan) { p.BaseFingerprint = "" }},
		{"no tau", func(p *Plan) { p.Tau = 0 }},
		{"no message size", func(p *Plan) { p.MessageBytes = 0 }},
		{"no target", func(p *Plan) { p.Target = nil }},
		{"step topic out of range", func(p *Plan) {
			p.Steps = append(p.Steps, dynamic.Step{Op: dynamic.OpPlace, VM: 0, Topic: workload.TopicID(w.NumTopics()), Subs: []workload.SubID{0}})
		}},
		{"step sub out of range", func(p *Plan) {
			p.Steps = append(p.Steps, dynamic.Step{Op: dynamic.OpPlace, VM: 0, Topic: 0, Subs: []workload.SubID{workload.SubID(w.NumSubscribers())}})
		}},
		{"step unknown op", func(p *Plan) {
			p.Steps = append(p.Steps, dynamic.Step{Op: dynamic.StepOp("nope")})
		}},
		{"boot with zero capacity", func(p *Plan) {
			p.Steps = append(p.Steps, dynamic.Step{Op: dynamic.OpBootVM, VM: 99, Instance: pricing.C3Large})
		}},
		{"boot with unnamed instance", func(p *Plan) {
			p.Steps = append(p.Steps, dynamic.Step{Op: dynamic.OpBootVM, VM: 99, Capacity: 1})
		}},
		{"target vm with zero capacity", func(p *Plan) {
			p.Target.Allocation.VMs[0].CapacityBytesPerHour = 0
		}},
		{"target vm with negative capacity", func(p *Plan) {
			p.Target.Allocation.VMs[0].CapacityBytesPerHour = -5
		}},
		{"target vm with unnamed instance", func(p *Plan) {
			p.Target.Allocation.VMs[0].Instance = pricing.InstanceType{}
		}},
		{"target topic twice on a vm", func(p *Plan) {
			vm := p.Target.Allocation.VMs[0]
			vm.Placements = append(vm.Placements, core.TopicPlacement{Topic: vm.Placements[0].Topic, Subs: []workload.SubID{0}})
		}},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			cp, err := NewPlanner(cfg).Plan(context.Background(), SpecFromWorkload(w), nil)
			if err != nil {
				t.Fatal(err)
			}
			tc.fn(cp)
			if err := cp.Validate(); !errors.Is(err, ErrInvalidPlan) {
				t.Fatalf("got %v, want ErrInvalidPlan", err)
			}
		})
	}
}

// TestSnapshotIsNoop: a snapshot plan applies as a no-op and leaves the
// fingerprint where it was.
func TestSnapshotIsNoop(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 8)
	ctx := context.Background()
	boot, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(ctx, boot, prov); err != nil {
		t.Fatal(err)
	}
	snap, err := Snapshot(cfg, StateOf(prov))
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IsNoop() {
		t.Fatalf("snapshot has %d steps", len(snap.Steps))
	}
	fp := StateOf(prov).Fingerprint()
	if snap.BaseFingerprint != fp || snap.TargetFingerprint() != fp {
		t.Fatal("snapshot fingerprints do not pin the current state")
	}
	if _, err := Apply(ctx, snap, prov); err != nil {
		t.Fatal(err)
	}
	if StateOf(prov).Fingerprint() != fp {
		t.Fatal("no-op apply moved the state")
	}
}

// TestSpecOverrides: spec-level τ/fleet/message-size overrides reach the
// solve.
func TestSpecOverrides(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 9)
	ctx := context.Background()
	fleet, err := pricing.NewFleet(pricing.C3Large, pricing.C3XLarge)
	if err != nil {
		t.Fatal(err)
	}
	fleet = fleet.WithBytesPerMbps(cfg.Model.CapacityBytesPerHour() / pricing.C3Large.LinkMbps)
	spec := Spec{Workload: w, Tau: 70, MessageBytes: 100, Fleet: fleet}
	plan, err := NewPlanner(cfg).Plan(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tau != 70 || plan.MessageBytes != 100 {
		t.Fatalf("plan carries τ=%d msg=%d", plan.Tau, plan.MessageBytes)
	}
	if plan.Fleet.Len() != 2 {
		t.Fatalf("plan fleet %v", plan.Fleet)
	}
	if _, err := NewPlanner(cfg).Plan(ctx, Spec{Workload: w, Strategy: "no-such"}, nil); !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("unknown strategy: got %v", err)
	}
}

// TestSpecFromEpoch builds specs from timeline epochs and rejects
// out-of-range ones.
func TestSpecFromEpoch(t *testing.T) {
	base := testWorkload(t, 10)
	tl, err := tracegen.Diurnal(base, tracegen.DefaultDiurnalConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SpecFromEpoch(tl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workload != tl.Epochs[3] {
		t.Fatal("spec does not reference the epoch snapshot")
	}
	if _, err := SpecFromEpoch(tl, tl.NumEpochs()); err == nil {
		t.Fatal("out-of-range epoch accepted")
	}
}

// TestPlanIncrementalApply plans a delta through the incremental engine and
// applies it: the plan must carry the standard fingerprint/step semantics
// (stale detection, replay-to-target), and after the apply the
// provisioner's state must be the plan's target — with the persistent index
// still coherent, so a follow-up incremental update needs no reindex.
func TestPlanIncrementalApply(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 7)
	ctx := context.Background()

	boot, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := EmptyState().Provisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(ctx, boot, prov); err != nil {
		t.Fatal(err)
	}

	d := dynamic.Delta{
		RateChanges: map[workload.TopicID]int64{0: w.Rate(0) + 40},
		Unsubscribe: []workload.Pair{},
	}
	plan, err := PlanIncremental(ctx, cfg, prov, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.BaseFingerprint != StateOf(prov).Fingerprint() {
		t.Fatal("incremental plan not pinned to the provisioner's state")
	}
	rep, err := Apply(ctx, plan, prov)
	if err != nil {
		t.Fatal(err)
	}
	if got := StateOf(prov).Fingerprint(); got != plan.TargetFingerprint() {
		t.Fatalf("post-apply fingerprint %s != plan target %s", got, plan.TargetFingerprint())
	}
	if rep.Cost != plan.CostAfter {
		t.Fatalf("applied cost %v != forecast %v", rep.Cost, plan.CostAfter)
	}
	if err := core.VerifyAllocation(prov.Workload(), prov.Selection(), prov.Allocation(), cfg); err != nil {
		t.Fatalf("applied allocation fails verification: %v", err)
	}
	// Replaying the same plan must now be stale — the state moved.
	if _, err := Apply(ctx, plan, prov); !errors.Is(err, ErrStalePlan) {
		t.Fatalf("second apply err = %v, want ErrStalePlan", err)
	}
	// An incremental no-op plan after the apply is a clean no-op.
	noop, err := PlanIncremental(ctx, cfg, prov, dynamic.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !noop.IsNoop() {
		t.Fatalf("empty-delta incremental plan has %d steps", len(noop.Steps))
	}
}
