// Package deploy is the declarative deployment lifecycle above the MCSS
// solver stack: Spec → Plan → Diff → Apply. A Spec names the desired state
// (workload, τ, fleet, strategy); a Planner turns it into a serializable
// Plan — the computed workload Diff, an executable step sequence (boot and
// retire VMs, place and remove topic replicas), a forecast cost delta, and
// a fingerprint of the cluster state the plan was computed against; Apply
// executes the plan against a dynamic.Provisioner, refusing stale plans,
// supporting dry runs and per-step progress, and rolling back to the
// pre-apply allocation on any mid-apply failure.
//
// Splitting "compute the reconfiguration" from "enact it" is what lets an
// operator inspect, persist, approve, or replay a change before it runs:
// plans are plain data (see traceio's versioned JSON plan format), the
// fingerprint pins them to the exact state they were computed for, and the
// same lifecycle carries every mutation — initial bootstrap, diurnal
// autoscaling epochs (the elastic Controller emits one Plan per epoch),
// crash repairs, fleet swaps, and τ changes.
package deploy

import (
	"context"
	"errors"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/dynamic"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/timeline"
	"github.com/pubsub-systems/mcss/internal/workload"
)

// PlanVersion is the current plan schema version; serialized plans carry
// it so future schema changes stay detectable.
const PlanVersion = 1

// Typed lifecycle errors.
var (
	// ErrInvalidPlan reports a plan that is structurally unusable: wrong
	// version, missing target, inconsistent steps, or steps that do not
	// reproduce the plan's own target state.
	ErrInvalidPlan = errors.New("deploy: invalid plan")
	// ErrStalePlan reports that the cluster state no longer matches the
	// fingerprint the plan was computed against; re-plan against the
	// current state instead of applying blind.
	ErrStalePlan = errors.New("deploy: plan is stale")
)

// Spec is the desired state of a deployment: the workload to serve plus
// the solver knobs that differ from the planning config's defaults. The
// zero values of Tau, MessageBytes, and Fleet mean "inherit from the
// planner"; Strategy optionally names a registered full-solve strategy.
type Spec struct {
	// Workload is the demand to satisfy (required).
	Workload *workload.Workload
	// Tau overrides the satisfaction threshold when positive.
	Tau int64
	// MessageBytes overrides the notification size when positive.
	MessageBytes int64
	// Fleet overrides the instance types to pack against when non-zero.
	Fleet pricing.Fleet
	// Strategy names a registered full-solve strategy (e.g. "exact")
	// replacing the two-stage pipeline when non-empty.
	Strategy string
}

// SpecFromWorkload is the minimal spec: desired workload, planner defaults
// for everything else.
func SpecFromWorkload(w *workload.Workload) Spec { return Spec{Workload: w} }

// SpecFromEpoch builds the spec for one epoch of a timeline — the bridge
// from the diurnal machinery into the plan lifecycle.
func SpecFromEpoch(tl *timeline.Timeline, epoch int) (Spec, error) {
	if err := tl.Validate(); err != nil {
		return Spec{}, err
	}
	if epoch < 0 || epoch >= tl.NumEpochs() {
		return Spec{}, fmt.Errorf("deploy: epoch %d outside timeline of %d", epoch, tl.NumEpochs())
	}
	return Spec{Workload: tl.Epochs[epoch]}, nil
}

// State is one cluster state: the workload being served and the allocation
// serving it. It is what plans are computed against and what Apply
// advances. The zero-ish EmptyState is the state of a cluster with nothing
// deployed.
type State struct {
	Workload   *workload.Workload
	Allocation *core.Allocation
}

// EmptyState returns the never-deployed cluster state.
func EmptyState() *State {
	return &State{Workload: &workload.Workload{}, Allocation: &core.Allocation{}}
}

// NewState bundles a workload and the allocation serving it.
func NewState(w *workload.Workload, alloc *core.Allocation) *State {
	return &State{Workload: w, Allocation: alloc}
}

// StateOf captures a provisioner's current state.
func StateOf(prov *dynamic.Provisioner) *State {
	return &State{Workload: prov.Workload(), Allocation: prov.Allocation()}
}

// Fingerprint hashes the state (see dynamic.StateFingerprint); equal
// fingerprints mean a plan computed against one state may be applied to
// the other.
func (s *State) Fingerprint() string {
	if s == nil {
		return dynamic.StateFingerprint(nil, nil)
	}
	return dynamic.StateFingerprint(s.Workload, s.Allocation)
}

// Provisioner rebuilds a dynamic.Provisioner around the state without
// re-solving, deriving the selection from the placed pairs — how a cluster
// reloaded from disk re-enters the online re-provisioning machinery.
func (s *State) Provisioner(cfg core.Config) (*dynamic.Provisioner, error) {
	sel, err := core.SelectionFromPairs(s.Workload, placedPairs(s.Allocation))
	if err != nil {
		return nil, err
	}
	return dynamic.Restore(s.Workload, &core.Result{Selection: sel, Allocation: s.Allocation}, cfg), nil
}

// placedPairs lists every (topic, subscriber) pair an allocation serves.
func placedPairs(alloc *core.Allocation) []workload.Pair {
	if alloc == nil {
		return nil
	}
	var pairs []workload.Pair
	for _, vm := range alloc.VMs {
		for _, p := range vm.Placements {
			for _, v := range p.Subs {
				pairs = append(pairs, workload.Pair{Topic: p.Topic, Sub: v})
			}
		}
	}
	return pairs
}

// Diff is the declarative difference a plan enacts: the workload delta
// (what demand changed) and the placement churn (what the reconfiguration
// moves), reusing the dynamic package's delta and migration machinery.
type Diff struct {
	// Delta transforms the base workload into the target workload.
	Delta dynamic.Delta
	// Stats quantifies placement churn between the base and target
	// allocations, including fleet sizes and cost before/after.
	Stats dynamic.MigrationStats
}

// Plan is a serializable, verifiable reconfiguration: everything needed to
// review the change (diff, steps, forecast cost), to refuse it when the
// world moved on (the base fingerprint), and to enact it (the step
// sequence plus the target state). Produce plans with Planner.Plan or
// NewPlan; persist them with traceio.SavePlan/LoadPlan.
type Plan struct {
	// Version is the plan schema version (PlanVersion).
	Version int
	// BaseFingerprint pins the plan to the state it was computed against.
	BaseFingerprint string
	// Tau and MessageBytes echo the solve parameters.
	Tau          int64
	MessageBytes int64
	// Model prices the forecast (rental duration, transfer price).
	Model pricing.Model
	// Fleet is the instance catalog the target packs against.
	Fleet pricing.Fleet
	// Diff is the reviewed-facing summary of the change.
	Diff Diff
	// CostBefore and CostAfter forecast the objective around the change
	// under Model; the delta is what the reconfiguration buys.
	CostBefore, CostAfter pricing.MicroUSD
	// Steps is the executable action sequence (removals, retirements,
	// boots, placements, in replay order).
	Steps []dynamic.Step
	// Target is the state the plan produces when applied.
	Target *State
}

// CostDelta reports CostAfter − CostBefore (saturating).
func (p *Plan) CostDelta() pricing.MicroUSD { return p.CostAfter.Add(p.CostBefore.Mul(-1)) }

// IsNoop reports whether the plan changes nothing (zero steps).
func (p *Plan) IsNoop() bool { return len(p.Steps) == 0 }

// TargetFingerprint is the fingerprint Apply leaves the cluster at.
func (p *Plan) TargetFingerprint() string { return p.Target.Fingerprint() }

// Validate checks the structural plan invariants — schema version, present
// target, in-range step and placement references, each topic at most once
// per target VM — and returns ErrInvalidPlan on the first violation. It is
// called by Apply and by the traceio plan reader, so a hostile or corrupt
// plan file fails closed instead of corrupting a cluster.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil plan", ErrInvalidPlan)
	}
	if p.Version != PlanVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrInvalidPlan, p.Version, PlanVersion)
	}
	if p.BaseFingerprint == "" {
		return fmt.Errorf("%w: missing base fingerprint", ErrInvalidPlan)
	}
	if p.Tau <= 0 {
		return fmt.Errorf("%w: non-positive tau %d", ErrInvalidPlan, p.Tau)
	}
	if p.MessageBytes <= 0 {
		return fmt.Errorf("%w: non-positive message size %d", ErrInvalidPlan, p.MessageBytes)
	}
	if p.Target == nil || p.Target.Workload == nil || p.Target.Allocation == nil {
		return fmt.Errorf("%w: missing target state", ErrInvalidPlan)
	}
	w := p.Target.Workload
	numT, numV := w.NumTopics(), w.NumSubscribers()
	for i, vm := range p.Target.Allocation.VMs {
		if vm.Instance.Name == "" || vm.CapacityBytesPerHour <= 0 {
			return fmt.Errorf("%w: target vm %d has instance %q with capacity %d (need a named type and positive capacity)",
				ErrInvalidPlan, i, vm.Instance.Name, vm.CapacityBytesPerHour)
		}
		seen := make(map[workload.TopicID]bool, len(vm.Placements))
		for _, pl := range vm.Placements {
			if int(pl.Topic) < 0 || int(pl.Topic) >= numT {
				return fmt.Errorf("%w: target vm %d serves topic %d of %d", ErrInvalidPlan, i, pl.Topic, numT)
			}
			if seen[pl.Topic] {
				return fmt.Errorf("%w: target vm %d serves topic %d twice", ErrInvalidPlan, i, pl.Topic)
			}
			seen[pl.Topic] = true
			for _, v := range pl.Subs {
				if int(v) < 0 || int(v) >= numV {
					return fmt.Errorf("%w: target vm %d serves subscriber %d of %d", ErrInvalidPlan, i, v, numV)
				}
			}
		}
	}
	for i, s := range p.Steps {
		switch s.Op {
		case dynamic.OpBootVM:
			if s.VM < 0 {
				return fmt.Errorf("%w: step %d targets negative slot %d", ErrInvalidPlan, i, s.VM)
			}
			if s.Instance.Name == "" || s.Capacity <= 0 {
				return fmt.Errorf("%w: step %d boots instance %q with capacity %d (need a named type and positive capacity)",
					ErrInvalidPlan, i, s.Instance.Name, s.Capacity)
			}
		case dynamic.OpRetireVM:
			if s.VM < 0 {
				return fmt.Errorf("%w: step %d targets negative slot %d", ErrInvalidPlan, i, s.VM)
			}
		case dynamic.OpPlace, dynamic.OpRemove:
			if s.VM < 0 {
				return fmt.Errorf("%w: step %d targets negative slot %d", ErrInvalidPlan, i, s.VM)
			}
			if int(s.Topic) < 0 || int(s.Topic) >= numT {
				return fmt.Errorf("%w: step %d references topic %d of %d", ErrInvalidPlan, i, s.Topic, numT)
			}
			if len(s.Subs) == 0 {
				return fmt.Errorf("%w: step %d has no subscribers", ErrInvalidPlan, i)
			}
			for _, v := range s.Subs {
				if int(v) < 0 || int(v) >= numV {
					return fmt.Errorf("%w: step %d references subscriber %d of %d", ErrInvalidPlan, i, v, numV)
				}
			}
		default:
			return fmt.Errorf("%w: step %d has unknown op %q", ErrInvalidPlan, i, string(s.Op))
		}
	}
	return nil
}

// NewPlan assembles the plan that moves a cluster from current to target
// without running a solver: the workload delta, the position-based
// migration stats, the executable step sequence, and the cost forecast
// under cfg.Model are all derived from the two states. It is the
// constructor the elastic controller uses once its policy has already
// chosen the target allocation; Planner.Plan wraps a solve around it. A
// nil current plans from the empty cluster.
func NewPlan(cfg core.Config, current, target *State) (*Plan, error) {
	if current == nil {
		current = EmptyState()
	}
	if target == nil || target.Workload == nil || target.Allocation == nil {
		return nil, fmt.Errorf("%w: missing target state", ErrInvalidPlan)
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 200
	}
	delta, err := dynamic.DeltaBetween(current.Workload, target.Workload)
	if err != nil {
		return nil, err
	}
	stats := dynamic.MigrationStatsBetween(current.Allocation, target.Allocation, cfg.Model)
	plan := &Plan{
		Version:         PlanVersion,
		BaseFingerprint: current.Fingerprint(),
		Tau:             cfg.Tau,
		MessageBytes:    cfg.MessageBytes,
		Model:           cfg.Model,
		Fleet:           cfg.EffectiveFleet(),
		Diff:            Diff{Delta: delta, Stats: stats},
		CostBefore:      stats.CostBefore,
		CostAfter:       stats.CostAfter,
		Steps:           dynamic.StepsBetween(current.Allocation, target.Allocation),
		Target:          target,
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// PlanIncremental previews an incremental update of the delta on the
// provisioner and wraps the candidate in the standard plan lifecycle: the
// plan's base is the provisioner's current state, its target the
// incrementally updated state, with the usual fingerprint pinning, step
// extraction, and cost forecast. The provisioner is not adopted — Apply
// the plan to enact it (the provisioner's persistent index then follows
// the adopted allocation, so the next incremental plan needs no reindex).
func PlanIncremental(ctx context.Context, cfg core.Config, prov *dynamic.Provisioner, d dynamic.Delta) (*Plan, error) {
	next, res, _, err := prov.PreviewIncremental(ctx, d)
	if err != nil {
		return nil, err
	}
	return NewPlan(cfg, StateOf(prov), NewState(next, res.Allocation))
}

// Snapshot returns the zero-step plan whose base and target are both the
// given state — the self-describing "this is the cluster now" document the
// CLI persists between plan and apply. Applying a snapshot is a no-op.
func Snapshot(cfg core.Config, s *State) (*Plan, error) {
	if s == nil {
		s = EmptyState()
	}
	return NewPlan(cfg, s, s)
}

// Planner computes plans by solving specs against a base configuration —
// the declarative face of the solver stack. The zero value is unusable;
// construct with NewPlanner around a normalized core.Config (the mcss
// Planner façade does this from its functional options).
type Planner struct {
	cfg core.Config
}

// NewPlanner wraps a solver configuration for planning.
func NewPlanner(cfg core.Config) *Planner { return &Planner{cfg: cfg} }

// Plan solves the spec and returns the serializable reconfiguration from
// current (nil = the empty cluster) to the solved target. The solve runs
// under ctx with the config's observer; spec fields override the planner's
// τ, message size, fleet, and full-solve strategy. The returned plan is
// pinned to current's fingerprint — apply it before the cluster drifts.
//
// Identifier stability is required in the declarative direction too: the
// spec's workload must extend the current one (IDs stable, counts may only
// grow), the same contract timelines and dynamic deltas obey.
func (p *Planner) Plan(ctx context.Context, spec Spec, current *State) (*Plan, error) {
	if spec.Workload == nil {
		return nil, fmt.Errorf("%w: spec has no workload", ErrInvalidPlan)
	}
	cfg := p.cfg
	if spec.Tau > 0 {
		cfg.Tau = spec.Tau
	}
	if spec.MessageBytes > 0 {
		cfg.MessageBytes = spec.MessageBytes
	}
	if !spec.Fleet.IsZero() {
		cfg.Fleet = spec.Fleet
	}
	if spec.Strategy != "" {
		s, ok := core.StrategyByName(spec.Strategy)
		if !ok || s.Solve == nil {
			return nil, fmt.Errorf("%w: unknown full-solve strategy %q", ErrInvalidPlan, spec.Strategy)
		}
		cfg.SolveStrategy = s
	}
	res, err := core.SolveContext(ctx, spec.Workload, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 200 // SolveContext normalized its own copy
	}
	return NewPlan(cfg, current, NewState(spec.Workload, res.Allocation))
}
