package deploy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/pubsub-systems/mcss/internal/pricing"
)

// The apply journal is a versioned append-only WAL that makes the
// Spec → Plan → Diff → Apply lifecycle crash-safe. Every plan application
// writes three kinds of records:
//
//	plan-begin(epoch, base-fingerprint, plan)   before the first step
//	step-done(epoch, i)                         after step i's effect lands
//	plan-commit(epoch, target-fingerprint)      after target verification
//
// plus plan-abort(epoch, base-fingerprint) when an apply fails cleanly,
// and snapshot(epoch, state-as-zero-step-plan) records written by periodic
// compaction (reusing the PR 4 state document, so a snapshot is just a
// Snapshot plan whose target is the checkpointed state).
//
// On-disk layout: a text magic header "mcss-journal 1\n", then framed
// records — uvarint payload length, 4-byte little-endian IEEE CRC32 of the
// payload, payload. The payload is: one type byte, varint epoch, varint
// step, uvarint-length-prefixed fingerprint, uvarint-length-prefixed body
// (the serialized plan for begin/snapshot records; the codec is injected
// as a JournalCodec because the plan document format lives in traceio,
// which imports this package).
//
// The reader distinguishes a torn tail from corruption the way etcd's WAL
// does: a record cut short by EOF is the normal artifact of a crash
// mid-write and is truncated away on the next open, while a CRC mismatch,
// an unknown record type, or a fingerprint-chain violation is
// ErrCorruptJournal — the caller (allocatord) keeps the state recovered up
// to the last valid commit and enters degraded read-only mode.

// journalMagic is the version-bearing header line of the journal format.
const journalMagic = "mcss-journal 1\n"

// maxJournalRecord bounds one record's payload (a serialized plan can be
// large, but a length past this is garbage, not data).
const maxJournalRecord = 1 << 30

// ErrCorruptJournal reports a journal whose bytes are damaged beyond the
// torn-tail case or whose records violate the fingerprint chain.
var ErrCorruptJournal = errors.New("deploy: corrupt journal")

// RecordType tags one journal record.
type RecordType byte

const (
	// RecSnapshot checkpoints a full state (body: zero-step plan).
	RecSnapshot RecordType = 'S'
	// RecPlanBegin opens a plan application (body: the plan).
	RecPlanBegin RecordType = 'B'
	// RecStepDone marks step i's effect durable.
	RecStepDone RecordType = 'D'
	// RecPlanCommit closes a verified plan application.
	RecPlanCommit RecordType = 'C'
	// RecPlanAbort closes a failed application; the base state stands.
	RecPlanAbort RecordType = 'A'
)

// Record is one decoded journal entry.
type Record struct {
	Type RecordType
	// Epoch tags the controller epoch the record belongs to (-1 when
	// the apply is not epoch-driven).
	Epoch int64
	// Step is the 0-based step index of a step-done record.
	Step int64
	// Fingerprint is the base fingerprint (begin/abort), the target
	// fingerprint (commit), or the checkpointed state's fingerprint
	// (snapshot).
	Fingerprint string
	// Body is the serialized plan of begin/snapshot records.
	Body []byte
}

// JournalCodec serializes plans for begin/snapshot record bodies. The
// implementation lives in traceio (the mcss-plan document), injected here
// to keep the deploy → traceio dependency one-way.
type JournalCodec struct {
	EncodePlan func(*Plan) ([]byte, error)
	DecodePlan func([]byte) (*Plan, error)
}

func (c JournalCodec) valid() bool { return c.EncodePlan != nil && c.DecodePlan != nil }

// JournalHooks observe journal activity (metrics wiring). Nil fields are
// skipped.
type JournalHooks struct {
	// Appended fires per record with its framed size in bytes.
	Appended func(bytes int)
	// Fsync fires per fsync with its duration in seconds.
	Fsync func(seconds float64)
	// Compacted fires when Compact replaces the file with a snapshot.
	Compacted func()
}

// JournalOptions tunes a Journal.
type JournalOptions struct {
	// SyncEvery batches fsyncs: step-done records force one only every
	// SyncEvery appends (default 1 — every record durable). Record
	// types that move the fingerprint chain (begin, commit, abort,
	// snapshot) always sync.
	SyncEvery int
	// Hooks observe appends, fsyncs, and compactions.
	Hooks JournalHooks
}

// Journal is an append-only apply journal bound to one file. It is not
// safe for concurrent use; the daemon's single apply loop owns it.
type Journal struct {
	path     string
	f        *os.File
	codec    JournalCodec
	opts     JournalOptions
	unsynced int
}

// OpenJournal opens (or creates) the journal at path for appending. An
// existing file is scanned first: a torn tail is truncated away, while
// corruption fails with ErrCorruptJournal — recover what the prefix
// allows with RecoverJournalFile before deciding to discard the file.
func OpenJournal(path string, codec JournalCodec, opts JournalOptions) (*Journal, error) {
	if !codec.valid() {
		return nil, errors.New("deploy: journal codec must encode and decode plans")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, codec: codec, opts: opts}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := j.sync(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	_, validLen, torn, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if torn {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if validLen < int64(len(journalMagic)) {
		// The crash tore the magic itself; rewrite the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := j.sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// AppendSnapshot checkpoints a state as a zero-step plan (see Snapshot).
func (j *Journal) AppendSnapshot(epoch int64, snap *Plan) error {
	body, err := j.codec.EncodePlan(snap)
	if err != nil {
		return err
	}
	return j.append(Record{Type: RecSnapshot, Epoch: epoch, Fingerprint: snap.TargetFingerprint(), Body: body}, true)
}

// AppendPlanBegin records the intent to apply plan at epoch.
func (j *Journal) AppendPlanBegin(epoch int64, plan *Plan) error {
	body, err := j.codec.EncodePlan(plan)
	if err != nil {
		return err
	}
	return j.append(Record{Type: RecPlanBegin, Epoch: epoch, Fingerprint: plan.BaseFingerprint, Body: body}, true)
}

// AppendStepDone records that step i's effect landed. Durability is
// batched per SyncEvery.
func (j *Journal) AppendStepDone(epoch int64, step int) error {
	return j.append(Record{Type: RecStepDone, Epoch: epoch, Step: int64(step)}, false)
}

// AppendPlanCommit records the verified completion of the open plan.
func (j *Journal) AppendPlanCommit(epoch int64, targetFingerprint string) error {
	return j.append(Record{Type: RecPlanCommit, Epoch: epoch, Fingerprint: targetFingerprint}, true)
}

// AppendPlanAbort records a clean failure of the open plan; the base
// state remains current.
func (j *Journal) AppendPlanAbort(epoch int64, baseFingerprint string) error {
	return j.append(Record{Type: RecPlanAbort, Epoch: epoch, Fingerprint: baseFingerprint}, true)
}

func (j *Journal) append(rec Record, forceSync bool) error {
	framed := frameRecord(encodeRecord(rec))
	if _, err := j.f.Write(framed); err != nil {
		return err
	}
	if j.opts.Hooks.Appended != nil {
		j.opts.Hooks.Appended(len(framed))
	}
	j.unsynced++
	if forceSync || j.unsynced >= j.opts.SyncEvery {
		return j.sync()
	}
	return nil
}

// Sync forces any batched records to disk.
func (j *Journal) Sync() error {
	if j.unsynced == 0 {
		return nil
	}
	return j.sync()
}

func (j *Journal) sync() error {
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	if j.opts.Hooks.Fsync != nil {
		j.opts.Hooks.Fsync(time.Since(start).Seconds())
	}
	j.unsynced = 0
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Compact atomically replaces the journal with a single snapshot record
// checkpointing snap's target state at epoch: the replacement is written
// to a temp file, fsynced, and renamed over the journal, so a crash at
// any point leaves either the old journal or the new one — never a mix.
func (j *Journal) Compact(epoch int64, snap *Plan) error {
	body, err := j.codec.EncodePlan(snap)
	if err != nil {
		return err
	}
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	rec := frameRecord(encodeRecord(Record{
		Type: RecSnapshot, Epoch: epoch, Fingerprint: snap.TargetFingerprint(), Body: body,
	}))
	if _, err := f.WriteString(journalMagic); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		return err
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if j.opts.Hooks.Fsync != nil {
		j.opts.Hooks.Fsync(time.Since(start).Seconds())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return err
	}
	j.f = nf
	j.unsynced = 0
	old.Close()
	if j.opts.Hooks.Compacted != nil {
		j.opts.Hooks.Compacted()
	}
	if j.opts.Hooks.Appended != nil {
		j.opts.Hooks.Appended(len(rec))
	}
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss.
// Filesystems that refuse directory fsync (some return EINVAL) are
// tolerated — the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// encodeRecord serializes one record payload (unframed).
func encodeRecord(rec Record) []byte {
	buf := make([]byte, 0, 16+len(rec.Fingerprint)+len(rec.Body))
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendVarint(buf, rec.Epoch)
	buf = binary.AppendVarint(buf, rec.Step)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Fingerprint)))
	buf = append(buf, rec.Fingerprint...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Body)))
	buf = append(buf, rec.Body...)
	return buf
}

// frameRecord wraps a payload with its length and CRC.
func frameRecord(payload []byte) []byte {
	framed := binary.AppendUvarint(nil, uint64(len(payload)))
	framed = binary.LittleEndian.AppendUint32(framed, crc32.ChecksumIEEE(payload))
	return append(framed, payload...)
}

// decodeRecord parses one payload produced by encodeRecord.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty record", ErrCorruptJournal)
	}
	rec := Record{Type: RecordType(payload[0])}
	switch rec.Type {
	case RecSnapshot, RecPlanBegin, RecStepDone, RecPlanCommit, RecPlanAbort:
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %#x", ErrCorruptJournal, payload[0])
	}
	rest := payload[1:]
	var n int
	rec.Epoch, n = binary.Varint(rest)
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: bad epoch varint", ErrCorruptJournal)
	}
	rest = rest[n:]
	rec.Step, n = binary.Varint(rest)
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: bad step varint", ErrCorruptJournal)
	}
	rest = rest[n:]
	fpLen, n := binary.Uvarint(rest)
	if n <= 0 || fpLen > uint64(len(rest)-n) {
		return Record{}, fmt.Errorf("%w: bad fingerprint length", ErrCorruptJournal)
	}
	rest = rest[n:]
	rec.Fingerprint = string(rest[:fpLen])
	rest = rest[fpLen:]
	bodyLen, n := binary.Uvarint(rest)
	if n <= 0 || bodyLen != uint64(len(rest)-n) {
		return Record{}, fmt.Errorf("%w: bad body length", ErrCorruptJournal)
	}
	rec.Body = append([]byte(nil), rest[n:]...)
	return rec, nil
}

// ReadJournal parses a journal stream. It returns the valid records, a
// flag reporting whether a torn tail (the normal artifact of a crash
// mid-write) was dropped, and ErrCorruptJournal when the stream is
// damaged beyond that — the records decoded before the damage are still
// returned, so recovery can proceed to the last valid point.
func ReadJournal(r io.Reader) ([]Record, bool, error) {
	recs, _, torn, err := scanJournal(r)
	return recs, torn, err
}

// ReadJournalFile reads the journal at path (see ReadJournal).
func ReadJournalFile(path string) ([]Record, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// scanJournal decodes records and tracks the byte offset of the last
// fully-valid record, so OpenJournal can truncate a torn tail in place.
func scanJournal(r io.Reader) (recs []Record, validLen int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(journalMagic))
	n, rerr := io.ReadFull(br, magic)
	if rerr != nil {
		if n == 0 && rerr == io.EOF {
			// A zero-byte file: a crash between create and the magic
			// write. Nothing to recover, nothing corrupt.
			return nil, 0, true, nil
		}
		return nil, 0, true, nil
	}
	if string(magic) != journalMagic {
		return nil, 0, false, fmt.Errorf("%w: bad magic %q", ErrCorruptJournal, magic)
	}
	validLen = int64(len(journalMagic))
	for {
		// Peek one byte to distinguish a clean end from a torn frame.
		if _, perr := br.Peek(1); perr == io.EOF {
			return recs, validLen, false, nil
		}
		length, lerr := binary.ReadUvarint(&countingReader{br: br})
		if lerr != nil {
			return recs, validLen, true, nil
		}
		if length > maxJournalRecord {
			return recs, validLen, false, fmt.Errorf("%w: record length %d", ErrCorruptJournal, length)
		}
		var crcBuf [4]byte
		if _, rerr := io.ReadFull(br, crcBuf[:]); rerr != nil {
			return recs, validLen, true, nil
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			return recs, validLen, true, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return recs, validLen, false, fmt.Errorf("%w: CRC mismatch in record %d", ErrCorruptJournal, len(recs))
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, validLen, false, derr
		}
		recs = append(recs, rec)
		validLen += int64(uvarintLen(length)) + 4 + int64(length)
	}
}

// countingReader adapts a bufio.Reader for ReadUvarint.
type countingReader struct{ br *bufio.Reader }

func (c *countingReader) ReadByte() (byte, error) { return c.br.ReadByte() }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Recovery is the outcome of replaying a journal: the reconstructed
// durable state, the epoch it corresponds to, and the in-flight plan (if
// a begin record has no matching commit or abort) with the first step
// whose step-done record is missing.
type Recovery struct {
	// State is the last durable state (EmptyState when the journal has
	// no snapshot or commit).
	State *State
	// Epoch is the epoch of the last snapshot or committed plan
	// (-1 when none).
	Epoch int64
	// InFlight is the plan whose begin record has no commit/abort, nil
	// when the journal closed cleanly.
	InFlight *Plan
	// InFlightEpoch is the in-flight plan's epoch tag.
	InFlightEpoch int64
	// NextStep is the first step of InFlight whose effect is not known
	// durable — resume execution here.
	NextStep int
	// Committed counts committed plans, Snapshots snapshot records,
	// Records all records replayed.
	Committed, Snapshots, Records int
	// Model is the pricing model carried by the last decoded plan —
	// what a recovered daemon prices the state with (zero when the
	// journal holds no plan).
	Model pricing.Model
	// Torn reports a truncated tail was dropped (normal after a crash).
	Torn bool
}

// Recover replays journal records into a Recovery, verifying the
// fingerprint chain: every begin/snapshot must extend the state the
// previous records establish, and every commit must match its plan's
// target. A violation returns the recovery built so far along with
// ErrCorruptJournal.
func Recover(records []Record, torn bool, codec JournalCodec) (*Recovery, error) {
	if !codec.valid() {
		return nil, errors.New("deploy: journal codec must encode and decode plans")
	}
	rec := &Recovery{State: EmptyState(), Epoch: -1, InFlightEpoch: -1, Torn: torn}
	fail := func(format string, args ...any) (*Recovery, error) {
		return rec, fmt.Errorf("%w: record %d: %v", ErrCorruptJournal, rec.Records, fmt.Errorf(format, args...))
	}
	for _, r := range records {
		switch r.Type {
		case RecSnapshot:
			if rec.InFlight != nil {
				return fail("snapshot inside an open plan")
			}
			snap, err := codec.DecodePlan(r.Body)
			if err != nil {
				return fail("snapshot body: %v", err)
			}
			if fp := snap.TargetFingerprint(); fp != r.Fingerprint {
				return fail("snapshot fingerprint %s, plan target %s", r.Fingerprint, fp)
			}
			rec.State = snap.Target
			rec.Epoch = r.Epoch
			rec.Model = snap.Model
			rec.Snapshots++
		case RecPlanBegin:
			if rec.InFlight != nil {
				return fail("plan-begin inside an open plan")
			}
			plan, err := codec.DecodePlan(r.Body)
			if err != nil {
				return fail("plan body: %v", err)
			}
			if plan.BaseFingerprint != r.Fingerprint {
				return fail("begin fingerprint %s, plan base %s", r.Fingerprint, plan.BaseFingerprint)
			}
			if fp := rec.State.Fingerprint(); fp != plan.BaseFingerprint {
				return fail("plan base %s does not extend state %s", plan.BaseFingerprint, fp)
			}
			rec.InFlight = plan
			rec.InFlightEpoch = r.Epoch
			rec.Model = plan.Model
			rec.NextStep = 0
		case RecStepDone:
			if rec.InFlight == nil {
				return fail("step-done outside a plan")
			}
			if r.Step != int64(rec.NextStep) {
				return fail("step-done %d, expected %d", r.Step, rec.NextStep)
			}
			if rec.NextStep >= len(rec.InFlight.Steps) {
				return fail("step-done %d past plan's %d steps", r.Step, len(rec.InFlight.Steps))
			}
			rec.NextStep++
		case RecPlanCommit:
			if rec.InFlight == nil {
				return fail("plan-commit outside a plan")
			}
			if fp := rec.InFlight.TargetFingerprint(); fp != r.Fingerprint {
				return fail("commit fingerprint %s, plan target %s", r.Fingerprint, fp)
			}
			rec.State = rec.InFlight.Target
			rec.Epoch = r.Epoch
			rec.Committed++
			rec.InFlight = nil
			rec.InFlightEpoch = -1
			rec.NextStep = 0
		case RecPlanAbort:
			if rec.InFlight == nil {
				return fail("plan-abort outside a plan")
			}
			if fp := rec.InFlight.BaseFingerprint; fp != r.Fingerprint {
				return fail("abort fingerprint %s, plan base %s", r.Fingerprint, fp)
			}
			rec.InFlight = nil
			rec.InFlightEpoch = -1
			rec.NextStep = 0
		default:
			return fail("unknown record type %#x", byte(r.Type))
		}
		rec.Records++
	}
	return rec, nil
}

// RecoverJournalFile reads and replays the journal at path. On
// corruption the partial recovery (state up to the last valid record) is
// returned together with ErrCorruptJournal so the caller can serve it
// read-only.
func RecoverJournalFile(path string, codec JournalCodec) (*Recovery, error) {
	records, torn, rerr := ReadJournalFile(path)
	rec, err := Recover(records, torn, codec)
	if err != nil {
		return rec, err
	}
	if rerr != nil {
		return rec, rerr
	}
	return rec, nil
}
