package deploy

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/pubsub-systems/mcss/internal/dynamic"
)

// Executor performs the external side effect of one plan step — the API
// call that boots the VM, the broker command that moves a placement. Apply
// invokes it once per step before mutating its working copy, so an
// executor failure leaves the in-memory state untouched. Execute must be
// idempotent per (plan, step index): after a crash the journal replay
// re-runs only steps whose step-done record never made it to disk, and a
// step whose effect landed but whose record did not may be executed a
// second time.
type Executor interface {
	Execute(ctx context.Context, i, total int, s dynamic.Step) error
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, i, total int, s dynamic.Step) error

// Execute implements Executor.
func (f ExecutorFunc) Execute(ctx context.Context, i, total int, s dynamic.Step) error {
	return f(ctx, i, total, s)
}

// NopExecutor performs no external effect — the pure-simulation executor
// the daemon uses when steps have no real cloud API behind them.
var NopExecutor Executor = ExecutorFunc(func(context.Context, int, int, dynamic.Step) error { return nil })

// ErrStepFailed reports a step whose execution failed permanently: either
// the executor returned a non-transient error, or retries were exhausted.
// The apply aborts, the provisioner keeps its pre-apply state, and the
// journal records the abort so recovery does not try to resume the plan.
var ErrStepFailed = errors.New("deploy: step execution failed")

// ErrSimulatedCrash is returned by a FaultInjector in crash mode. Apply
// propagates it verbatim without writing an abort record, leaving the
// journal exactly as a kill -9 would: plan-begin plus the step-done
// records that were already durable.
var ErrSimulatedCrash = errors.New("deploy: simulated crash")

// transientError marks an executor failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the retry executor treats it as retryable. A nil
// err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable via Transient.
// Per-attempt timeouts (context.DeadlineExceeded) also count as transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// RetryConfig tunes a RetryExecutor. Zero values select the defaults
// noted on each field.
type RetryConfig struct {
	// MaxAttempts bounds executions per step, first try included
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 25ms);
	// each further retry doubles it up to MaxBackoff (default 2s). The
	// realized delay is jittered uniformly in [d/2, d).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// StepTimeout bounds each attempt with its own deadline context
	// (0 = none). An attempt that outlives it fails transiently and is
	// retried; the parent context's cancellation still aborts outright.
	StepTimeout time.Duration
	// Seed makes the jitter deterministic (0 picks a fixed default).
	Seed int64
	// Sleep replaces the inter-attempt wait, letting tests skip real
	// delays. It must honor ctx. Nil uses a timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry fires before each retry with the failed attempt number
	// (1-based) and its error.
	OnRetry func(step, attempt int, err error)
	// OnGiveUp fires when a step exhausts MaxAttempts or fails
	// permanently, before ErrStepFailed is returned.
	OnGiveUp func(step, attempts int, err error)
}

// RetryExecutor wraps an inner executor with the failure semantics real
// cloud steps need: a per-attempt timeout, bounded exponential backoff
// with deterministic jitter, and the transient-vs-permanent contract —
// errors marked with Transient (and per-attempt timeouts) are retried up
// to MaxAttempts, anything else aborts immediately as ErrStepFailed.
type RetryExecutor struct {
	inner Executor
	cfg   RetryConfig
	rng   *rand.Rand
}

// NewRetryExecutor wraps inner with cfg's retry policy.
func NewRetryExecutor(inner Executor, cfg RetryConfig) *RetryExecutor {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &RetryExecutor{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Execute implements Executor.
func (e *RetryExecutor) Execute(ctx context.Context, i, total int, s dynamic.Step) error {
	for attempt := 1; ; attempt++ {
		err := e.attempt(ctx, i, total, s)
		if err == nil {
			return nil
		}
		// A simulated crash models process death: no retries, no
		// wrapping — the caller must see it exactly as thrown.
		if errors.Is(err, ErrSimulatedCrash) {
			return err
		}
		// The parent context dying aborts the apply regardless of the
		// error's own class.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if !IsTransient(err) && !errors.Is(err, context.DeadlineExceeded) {
			if e.cfg.OnGiveUp != nil {
				e.cfg.OnGiveUp(i, attempt, err)
			}
			return fmt.Errorf("%w: step %d/%d (%s): %w", ErrStepFailed, i, total, s, err)
		}
		if attempt >= e.cfg.MaxAttempts {
			if e.cfg.OnGiveUp != nil {
				e.cfg.OnGiveUp(i, attempt, err)
			}
			return fmt.Errorf("%w: step %d/%d (%s): %d attempts exhausted: %w",
				ErrStepFailed, i, total, s, attempt, err)
		}
		if e.cfg.OnRetry != nil {
			e.cfg.OnRetry(i, attempt, err)
		}
		if err := e.sleep(ctx, e.backoff(attempt)); err != nil {
			return err
		}
	}
}

// attempt runs one execution under the per-attempt timeout.
func (e *RetryExecutor) attempt(ctx context.Context, i, total int, s dynamic.Step) error {
	if e.cfg.StepTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, e.cfg.StepTimeout)
		defer cancel()
		ctx = actx
	}
	return e.inner.Execute(ctx, i, total, s)
}

// backoff computes the jittered delay before retry number attempt.
func (e *RetryExecutor) backoff(attempt int) time.Duration {
	d := e.cfg.BaseBackoff
	for n := 1; n < attempt && d < e.cfg.MaxBackoff; n++ {
		d *= 2
	}
	if d > e.cfg.MaxBackoff {
		d = e.cfg.MaxBackoff
	}
	// Uniform jitter in [d/2, d) decorrelates concurrent appliers.
	return d/2 + time.Duration(e.rng.Int63n(int64(d/2)+1))
}

func (e *RetryExecutor) sleep(ctx context.Context, d time.Duration) error {
	if e.cfg.Sleep != nil {
		return e.cfg.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// EffectLog counts realized step effects across executor instances, so a
// crash-resume test can assert exactly-once execution spanning the
// pre-crash and post-recovery applies.
type EffectLog struct {
	counts map[int]int
}

// NewEffectLog returns an empty effect log.
func NewEffectLog() *EffectLog { return &EffectLog{counts: make(map[int]int)} }

func (l *EffectLog) record(step int) {
	if l.counts == nil {
		l.counts = make(map[int]int)
	}
	l.counts[step]++
}

// Executions returns how many times step i's effect landed.
func (l *EffectLog) Executions(step int) int { return l.counts[step] }

// MaxPerStep returns the largest per-step effect count (0 when empty);
// a value above 1 means a duplicate effect.
func (l *EffectLog) MaxPerStep() int {
	max := 0
	for _, n := range l.counts {
		if n > max {
			max = n
		}
	}
	return max
}

// Total returns the number of effects across all steps.
func (l *EffectLog) Total() int {
	sum := 0
	for _, n := range l.counts {
		sum += n
	}
	return sum
}

// FaultConfig programs a FaultInjector. All probabilities are evaluated
// per execution attempt with the injector's seeded generator.
type FaultConfig struct {
	// FailProb injects a transient failure (before the effect lands).
	FailProb float64
	// PermanentProb injects a permanent failure (before the effect).
	PermanentProb float64
	// Crash arms CrashAtStep; the zero config never crashes.
	Crash bool
	// CrashAtStep simulates process death when executing this step
	// index: ErrSimulatedCrash is returned before the effect, or the
	// process exits when CrashProcess is set. Crashing at step i
	// therefore models "crash after step i-1 committed".
	CrashAtStep int
	// CrashProcess escalates the simulated crash to os.Exit(137) — the
	// real kill -9 for CI smoke tests. Leave unset in-process.
	CrashProcess bool
	// Latency is added to every execution attempt.
	Latency time.Duration
	// Seed makes the fault sequence reproducible (0 picks 1).
	Seed int64
	// Effects, when set, records realized step effects — share one log
	// across the pre-crash and resumed injectors to detect duplicates.
	Effects *EffectLog
}

// FaultInjector wraps an executor with deterministic seeded fault
// injection: transient failures with probability FailProb, permanent
// failures with PermanentProb, a simulated crash at a chosen step, and
// added latency. Injected failures fire before the inner effect, matching
// the cloud-API model where a failed call did not take effect.
type FaultInjector struct {
	inner Executor
	cfg   FaultConfig
	rng   *rand.Rand
}

// NewFaultInjector wraps inner with cfg's fault program.
func NewFaultInjector(inner Executor, cfg FaultConfig) *FaultInjector {
	if inner == nil {
		inner = NopExecutor
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultInjector{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Execute implements Executor.
func (f *FaultInjector) Execute(ctx context.Context, i, total int, s dynamic.Step) error {
	if f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if f.cfg.Crash && i == f.cfg.CrashAtStep {
		if f.cfg.CrashProcess {
			fmt.Fprintf(os.Stderr, "fault-injector: simulated process crash at step %d/%d\n", i, total)
			os.Exit(137)
		}
		return fmt.Errorf("%w: at step %d/%d", ErrSimulatedCrash, i, total)
	}
	if f.cfg.PermanentProb > 0 && f.rng.Float64() < f.cfg.PermanentProb {
		return fmt.Errorf("injected permanent fault at step %d (%s)", i, s)
	}
	if f.cfg.FailProb > 0 && f.rng.Float64() < f.cfg.FailProb {
		return Transient(fmt.Errorf("injected transient fault at step %d (%s)", i, s))
	}
	if err := f.inner.Execute(ctx, i, total, s); err != nil {
		return err
	}
	if f.cfg.Effects != nil {
		f.cfg.Effects.record(i)
	}
	return nil
}
