package deploy

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/pubsub-systems/mcss/internal/dynamic"
)

// noSleep makes retry loops instantaneous while still honoring ctx.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func testStep() dynamic.Step {
	return dynamic.Step{Op: dynamic.OpPlace}
}

func TestRetryExecutorTransientThenSuccess(t *testing.T) {
	attempts, retries := 0, 0
	exec := NewRetryExecutor(ExecutorFunc(func(context.Context, int, int, dynamic.Step) error {
		attempts++
		if attempts < 3 {
			return Transient(errors.New("flaky API"))
		}
		return nil
	}), RetryConfig{Sleep: noSleep, OnRetry: func(int, int, error) { retries++ }})
	if err := exec.Execute(context.Background(), 0, 1, testStep()); err != nil {
		t.Fatalf("transient failures within budget must succeed: %v", err)
	}
	if attempts != 3 || retries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3 and 2", attempts, retries)
	}
}

func TestRetryExecutorPermanentFailsImmediately(t *testing.T) {
	attempts, gaveUp := 0, 0
	exec := NewRetryExecutor(ExecutorFunc(func(context.Context, int, int, dynamic.Step) error {
		attempts++
		return errors.New("quota exceeded")
	}), RetryConfig{Sleep: noSleep, OnGiveUp: func(int, int, error) { gaveUp++ }})
	err := exec.Execute(context.Background(), 2, 5, testStep())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("permanent error must surface as ErrStepFailed, got %v", err)
	}
	if attempts != 1 || gaveUp != 1 {
		t.Fatalf("permanent error retried: attempts=%d gaveUp=%d", attempts, gaveUp)
	}
}

func TestRetryExecutorExhaustsAttempts(t *testing.T) {
	attempts := 0
	exec := NewRetryExecutor(ExecutorFunc(func(context.Context, int, int, dynamic.Step) error {
		attempts++
		return Transient(errors.New("still flaky"))
	}), RetryConfig{MaxAttempts: 3, Sleep: noSleep})
	err := exec.Execute(context.Background(), 0, 1, testStep())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("exhaustion must surface as ErrStepFailed, got %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts=%d, want MaxAttempts=3", attempts)
	}
}

func TestRetryExecutorStepTimeoutIsTransient(t *testing.T) {
	attempts := 0
	exec := NewRetryExecutor(ExecutorFunc(func(ctx context.Context, _, _ int, _ dynamic.Step) error {
		attempts++
		if attempts == 1 {
			<-ctx.Done() // outlive the per-attempt deadline
			return ctx.Err()
		}
		return nil
	}), RetryConfig{StepTimeout: 5 * time.Millisecond, Sleep: noSleep})
	if err := exec.Execute(context.Background(), 0, 1, testStep()); err != nil {
		t.Fatalf("per-attempt timeout must be retried: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts=%d, want 2", attempts)
	}
}

func TestRetryExecutorParentCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	exec := NewRetryExecutor(ExecutorFunc(func(context.Context, int, int, dynamic.Step) error {
		cancel() // the parent dies while the step is failing
		return Transient(errors.New("flaky"))
	}), RetryConfig{Sleep: noSleep})
	err := exec.Execute(ctx, 0, 1, testStep())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parent cancellation must abort, got %v", err)
	}
	if errors.Is(err, ErrStepFailed) {
		t.Fatal("cancellation must not be classified as a step failure")
	}
}

func TestRetryExecutorPassesSimulatedCrashVerbatim(t *testing.T) {
	inj := NewFaultInjector(NopExecutor, FaultConfig{Crash: true, CrashAtStep: 1})
	exec := NewRetryExecutor(inj, RetryConfig{Sleep: noSleep})
	if err := exec.Execute(context.Background(), 0, 3, testStep()); err != nil {
		t.Fatalf("non-crash step failed: %v", err)
	}
	err := exec.Execute(context.Background(), 1, 3, testStep())
	if !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("crash must pass through the retry layer verbatim, got %v", err)
	}
}

// TestApplyAbortContract pins the typed-error contract of a failed apply:
// an observer abort is ErrAborted wrapping the observer's own error, an
// executor failure is ErrStepFailed, the two are distinguishable, and
// both leave the provisioner on its pre-apply state.
func TestApplyAbortContract(t *testing.T) {
	cfg := testConfig()
	w := testWorkload(t, 7)
	ctx := context.Background()
	plan, err := NewPlanner(cfg).Plan(ctx, SpecFromWorkload(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) < 2 {
		t.Fatalf("bootstrap plan has %d steps, need >= 2", len(plan.Steps))
	}
	cause := errors.New("operator said no")

	cases := []struct {
		name    string
		opts    func() []ApplyOption
		wantIs  error
		wantNot error
		cause   error
	}{
		{
			name: "observer abort",
			opts: func() []ApplyOption {
				return []ApplyOption{WithObserver(ObserverFunc(func(i, _ int, _ dynamic.Step) error {
					if i == 1 {
						return cause
					}
					return nil
				}))}
			},
			wantIs: ErrAborted, wantNot: ErrStepFailed, cause: cause,
		},
		{
			name: "executor permanent failure",
			opts: func() []ApplyOption {
				return []ApplyOption{WithExecutor(ExecutorFunc(func(_ context.Context, i, _ int, _ dynamic.Step) error {
					if i == 1 {
						return fmt.Errorf("instance type retired")
					}
					return nil
				}))}
			},
			wantIs: ErrStepFailed, wantNot: ErrAborted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prov, err := EmptyState().Provisioner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pre := StateOf(prov).Fingerprint()
			_, err = Apply(ctx, plan, prov, tc.opts()...)
			if !errors.Is(err, tc.wantIs) {
				t.Fatalf("want %v, got %v", tc.wantIs, err)
			}
			if errors.Is(err, tc.wantNot) {
				t.Fatalf("error %v must not also be %v", err, tc.wantNot)
			}
			if tc.cause != nil && !errors.Is(err, tc.cause) {
				t.Fatalf("abort must wrap the observer's error, got %v", err)
			}
			if got := StateOf(prov).Fingerprint(); got != pre {
				t.Fatalf("failed apply moved the provisioner: %s -> %s", pre, got)
			}
		})
	}
}

func TestFaultInjectorEffectLog(t *testing.T) {
	effects := NewEffectLog()
	inj := NewFaultInjector(NopExecutor, FaultConfig{Effects: effects})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := inj.Execute(ctx, i, 3, testStep()); err != nil {
			t.Fatal(err)
		}
	}
	if err := inj.Execute(ctx, 1, 3, testStep()); err != nil {
		t.Fatal(err)
	}
	if effects.Total() != 4 || effects.MaxPerStep() != 2 || effects.Executions(1) != 2 {
		t.Fatalf("effect log miscounts: total=%d max=%d step1=%d",
			effects.Total(), effects.MaxPerStep(), effects.Executions(1))
	}
}
