package mcss_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	mcss "github.com/pubsub-systems/mcss"
)

func demoModel() mcss.Model {
	m := mcss.NewModel(mcss.C3Large)
	m.CapacityOverrideBytesPerHour = 150_000
	return m
}

// Every invalid option must surface from NewPlanner as ErrBadOption with a
// message naming the option — not as a panic or a late failure inside a
// solve.
func TestNewPlannerOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []mcss.Option
		want string // substring of the error message
	}{
		{"non-positive tau", []mcss.Option{mcss.WithTau(0), mcss.WithModel(demoModel())}, "WithTau"},
		{"negative tau", []mcss.Option{mcss.WithTau(-5), mcss.WithModel(demoModel())}, "WithTau"},
		{"missing tau", []mcss.Option{mcss.WithModel(demoModel())}, "WithTau is required"},
		{"zero model", []mcss.Option{mcss.WithTau(10), mcss.WithModel(mcss.Model{})}, "WithModel"},
		{"missing model", []mcss.Option{mcss.WithTau(10)}, "WithModel is required"},
		{"empty fleet", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithFleet(mcss.Fleet{})}, "WithFleet"},
		{"unknown stage1", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithStage1("nope")}, `unknown strategy "nope"`},
		{"stage1 role mismatch", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithStage1("cbp")}, "no Stage-1 role"},
		{"unknown stage2", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithStage2("nope")}, `unknown strategy "nope"`},
		{"stage2 role mismatch", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithStage2("gsp")}, "no Stage-2 role"},
		{"unknown full strategy", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithStrategy("nope")}, `unknown strategy "nope"`},
		{"full-solve role mismatch", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithStrategy("gsp")}, "no full-solve role"},
		{"non-positive message bytes", []mcss.Option{mcss.WithTau(10), mcss.WithModel(demoModel()), mcss.WithMessageBytes(0)}, "WithMessageBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := mcss.NewPlanner(tc.opts...)
			if err == nil {
				t.Fatalf("NewPlanner succeeded (%v), want ErrBadOption", p.Config())
			}
			if !errors.Is(err, mcss.ErrBadOption) {
				t.Errorf("error %v does not wrap ErrBadOption", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Multiple bad options are all reported at once.
func TestNewPlannerJoinsAllErrors(t *testing.T) {
	_, err := mcss.NewPlanner(mcss.WithTau(-1), mcss.WithStage1("nope"))
	if err == nil {
		t.Fatal("NewPlanner succeeded with two bad options")
	}
	for _, want := range []string{"WithTau", "WithStage1", "WithModel is required"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q misses %q", err, want)
		}
	}
}

// The Planner path must produce bit-identical results to the deprecated
// Solve wrapper under the equivalent configuration.
func TestPlannerMatchesDeprecatedSolve(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(40)
	old, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mcss.NewPlanner(mcss.WithTau(40), mcss.WithModel(cfg.Model))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selection.NumPairs() != old.Selection.NumPairs() {
		t.Errorf("planner selected %d pairs, Solve selected %d", res.Selection.NumPairs(), old.Selection.NumPairs())
	}
	if res.Allocation.NumVMs() != old.Allocation.NumVMs() {
		t.Errorf("planner packed %d VMs, Solve packed %d", res.Allocation.NumVMs(), old.Allocation.NumVMs())
	}
	if got, want := res.Cost(cfg.Model), old.Cost(cfg.Model); got != want {
		t.Errorf("planner cost %v, Solve cost %v", got, want)
	}
	if err := p.Verify(w, res.Selection, res.Allocation); err != nil {
		t.Errorf("Verify: %v", err)
	}
	lb, err := p.LowerBound(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Cost > res.Cost(cfg.Model) {
		t.Errorf("lower bound %v exceeds solution cost %v", lb.Cost, res.Cost(cfg.Model))
	}
}

// Named strategies dispatch to the same algorithms as the enum config.
func TestPlannerStrategyDispatch(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(40)
	cfg.Stage1, cfg.Stage2 = mcss.Stage1Random, mcss.Stage2First
	old, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mcss.NewPlanner(
		mcss.WithTau(40), mcss.WithModel(cfg.Model),
		mcss.WithStage1("rsp"), mcss.WithStage2("ffbp"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation.NumVMs() != old.Allocation.NumVMs() ||
		res.Selection.NumPairs() != old.Selection.NumPairs() {
		t.Errorf("strategy dispatch (%d VMs / %d pairs) != enum dispatch (%d VMs / %d pairs)",
			res.Allocation.NumVMs(), res.Selection.NumPairs(),
			old.Allocation.NumVMs(), old.Selection.NumPairs())
	}
}

// A third-party strategy registers once and is selectable by name.
func TestRegisterStrategyThirdParty(t *testing.T) {
	name := "test-select-all"
	err := mcss.RegisterStrategy(name, mcss.Strategy{
		Description: "selects every pair (test helper)",
		SelectPairs: func(ctx context.Context, w *mcss.Workload, cfg mcss.SolverConfig) (*mcss.Selection, error) {
			return mcss.SelectAllPairs(w), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcss.RegisterStrategy(name, mcss.Strategy{SelectPairs: func(ctx context.Context, w *mcss.Workload, cfg mcss.SolverConfig) (*mcss.Selection, error) {
		return nil, nil
	}}); err == nil {
		t.Error("duplicate registration succeeded, want error")
	}
	w := buildDemo(t)
	p, err := mcss.NewPlanner(mcss.WithTau(40), mcss.WithModel(demoModel()), mcss.WithStage1(name))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selection.NumPairs() != w.NumPairs() {
		t.Errorf("select-all strategy selected %d of %d pairs", res.Selection.NumPairs(), w.NumPairs())
	}
	found := false
	for _, n := range mcss.StrategyNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Errorf("StrategyNames() = %v misses %q", mcss.StrategyNames(), name)
	}
}

// WithStrategy("exact") runs the optimal solver end to end through the
// Planner and can never cost more than the heuristic.
func TestPlannerExactStrategy(t *testing.T) {
	w, err := mcss.NewWorkloadBuilder().
		AddTopic("a", 30).AddTopic("b", 20).AddTopic("c", 10).
		AddSubscription("u1", "a").AddSubscription("u1", "b").
		AddSubscription("u2", "b").AddSubscription("u2", "c").
		AddSubscription("u3", "a").AddSubscription("u3", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mcss.NewModel(mcss.C3Large)
	m.CapacityOverrideBytesPerHour = 40_000
	heur, err := mcss.NewPlanner(mcss.WithTau(25), mcss.WithModel(m), mcss.WithMessageBytes(200))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := mcss.NewPlanner(mcss.WithTau(25), mcss.WithModel(m), mcss.WithMessageBytes(200), mcss.WithStrategy("exact"))
	if err != nil {
		t.Fatal(err)
	}
	hres, err := heur.Solve(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := ex.Solve(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if eres.Cost(m) > hres.Cost(m) {
		t.Errorf("exact strategy cost %v exceeds heuristic %v", eres.Cost(m), hres.Cost(m))
	}
	if err := ex.Verify(w, eres.Selection, eres.Allocation); err != nil {
		t.Errorf("exact result fails verification: %v", err)
	}
}

// stageRecorder records observer callbacks; safe for concurrent use.
type stageRecorder struct {
	mu     sync.Mutex
	starts []string
	dones  []string
	epochs int
}

func (r *stageRecorder) OnStageStart(stage string, total int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, stage)
}
func (r *stageRecorder) OnProgress(stage string, done, total int64) {}
func (r *stageRecorder) OnStageDone(stage string, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dones = append(r.dones, stage)
}
func (r *stageRecorder) OnEpoch(epoch, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epochs++
}

// The Observer sees both stages bracketed, in order.
func TestPlannerObserverStages(t *testing.T) {
	w := buildDemo(t)
	rec := &stageRecorder{}
	p, err := mcss.NewPlanner(mcss.WithTau(40), mcss.WithModel(demoModel()), mcss.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if len(rec.starts) != 2 || rec.starts[0] != "stage1" || rec.starts[1] != "stage2" {
		t.Errorf("stage starts = %v, want [stage1 stage2]", rec.starts)
	}
	if len(rec.dones) != 2 || rec.dones[0] != "stage1" || rec.dones[1] != "stage2" {
		t.Errorf("stage dones = %v, want [stage1 stage2]", rec.dones)
	}
}

// A cancelled context aborts Planner.Solve with context.Canceled.
func TestPlannerSolveCancelled(t *testing.T) {
	w := buildDemo(t)
	p, err := mcss.NewPlanner(mcss.WithTau(40), mcss.WithModel(demoModel()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Solve(ctx, w); !errors.Is(err, context.Canceled) {
		t.Errorf("Solve err = %v, want context.Canceled", err)
	}
	if _, err := p.LowerBound(ctx, w); !errors.Is(err, context.Canceled) {
		t.Errorf("LowerBound err = %v, want context.Canceled", err)
	}
	if _, err := p.Provision(ctx, w); !errors.Is(err, context.Canceled) {
		t.Errorf("Provision err = %v, want context.Canceled", err)
	}
}

// RunTimeline drives the elastic controller through the Planner, reporting
// an OnEpoch callback per epoch, and honors cancellation.
func TestPlannerRunTimeline(t *testing.T) {
	base := buildDemo(t)
	day := mcss.DefaultDiurnalTrace()
	day.Epochs, day.FlashEpoch = 6, -1
	tl, err := mcss.GenerateDiurnal(base, day)
	if err != nil {
		t.Fatal(err)
	}
	rec := &stageRecorder{}
	p, err := mcss.NewPlanner(mcss.WithTau(40), mcss.WithModel(demoModel()), mcss.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.RunTimeline(context.Background(), tl, mcss.DefaultElasticPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != tl.NumEpochs() {
		t.Errorf("report covers %d epochs, timeline has %d", len(rep.Epochs), tl.NumEpochs())
	}
	if rec.epochs != tl.NumEpochs() {
		t.Errorf("observer saw %d OnEpoch callbacks, want %d", rec.epochs, tl.NumEpochs())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunTimeline(ctx, tl, mcss.DefaultElasticPolicy()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTimeline err = %v, want context.Canceled", err)
	}
}

// RunTimelineSpot walks a timeline against a generated spot market through
// the Planner: the fleet reprices per epoch, chaos reclamations are billed
// on the run's ledger, and the defaulted risk-aware strategy still serves
// every epoch.
func TestPlannerRunTimelineSpot(t *testing.T) {
	base := buildDemo(t)
	day := mcss.DefaultDiurnalTrace()
	day.Epochs, day.FlashEpoch = 6, -1
	tl, err := mcss.GenerateDiurnal(base, day)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mcss.NewPlanner(mcss.WithTau(40), mcss.WithModel(demoModel()))
	if err != nil {
		t.Fatal(err)
	}

	mcfg := mcss.DefaultSpotMarketConfig()
	mcfg.Epochs = tl.NumEpochs()
	mcfg.EpochMinutes = tl.EpochMinutes
	mcfg.BaseReclaimProb = 0.3 // hot market: reclamations certain at demo size
	mcfg.Seed = 7
	market, err := mcss.GenerateSpotMarket(p.Config().EffectiveFleet(), mcfg)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := p.RunTimelineSpot(context.Background(), tl, mcss.DefaultElasticPolicy(),
		market, mcss.SpotRunConfig{ChaosSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != tl.NumEpochs() {
		t.Fatalf("report covers %d epochs, timeline has %d", len(rep.Epochs), tl.NumEpochs())
	}
	reclaimed, repriced := 0, 0
	for _, ep := range rep.Epochs {
		reclaimed += ep.ReclaimedVMs
		if ep.Repriced {
			repriced++
		}
	}
	if repriced == 0 {
		t.Error("no price epoch over a volatile market")
	}
	if got := rep.Ledger.ReclaimedVMs(); got != int64(reclaimed) {
		t.Errorf("ledger billed %d reclamations, epoch reports carry %d", got, reclaimed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunTimelineSpot(ctx, tl, mcss.DefaultElasticPolicy(),
		market, mcss.SpotRunConfig{}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTimelineSpot err = %v, want context.Canceled", err)
	}
}
