package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// timelineOpts is the shared replay configuration of the recovery tests:
// small enough to be quick, long enough that an interruption lands
// mid-timeline.
func timelineOpts(dataDir string) options {
	return options{
		dataset: "twitter", scale: 0.002, tau: 10,
		diurnal: true, epochs: 6, epochMinutes: 60,
		dataDir: dataDir, journalSync: 1,
	}
}

// TestDaemonCrashRecovery interrupts a journaled timeline replay partway
// through, restarts the daemon on the same data directory with identical
// options, and requires the resumed run to (a) replay the journal, (b)
// finish the timeline, and (c) land on the exact fingerprint an
// uninterrupted replay of the same options reaches.
func TestDaemonCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference run on its own data directory.
	ref := newDaemon(nil)
	if err := ref.load(context.Background(), timelineOpts(filepath.Join(dir, "ref"))); err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	ref.mu.RLock()
	wantFP := ref.state.Fingerprint()
	ref.mu.RUnlock()

	// Interrupted run: the epoch interval paces the replay so the
	// deadline fires mid-timeline — the in-process stand-in for kill -9.
	crashDir := filepath.Join(dir, "crash")
	o := timelineOpts(crashDir)
	o.epochInterval = 30 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	d1 := newDaemon(nil)
	err := d1.load(ctx, o)
	cancel()
	if err == nil {
		t.Fatal("interrupted replay finished; deadline too generous to test recovery")
	}
	if !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("interrupted replay failed with %v, want context deadline", err)
	}
	if _, err := os.Stat(filepath.Join(crashDir, "apply.journal")); err != nil {
		t.Fatalf("no journal after interrupted replay: %v", err)
	}

	// Restart with the same flags: recovery + resumed replay to the end.
	d2 := newDaemon(nil)
	base, done := startServer(t, d2, context.Background())
	o.epochInterval = 0
	if err := d2.load(context.Background(), o); err != nil {
		t.Fatalf("resumed replay: %v", err)
	}
	if code, body := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d %q, want 200", code, body)
	}
	code, body := get(t, base+"/state")
	if code != http.StatusOK {
		t.Fatalf("state = %d, want 200", code)
	}
	var doc stateDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("state JSON: %v", err)
	}
	if doc.Degraded {
		t.Fatal("recovered daemon reports degraded")
	}
	if doc.Epoch != 6 || doc.NumEpochs != 6 {
		t.Errorf("resumed replay stopped at epoch %d/%d, want 6/6", doc.Epoch, doc.NumEpochs)
	}
	if doc.Fingerprint != wantFP {
		t.Errorf("resumed fingerprint %s, uninterrupted run reaches %s", doc.Fingerprint, wantFP)
	}

	_, page := get(t, base+"/metrics")
	for _, m := range []string{
		"mcss_journal_recoveries_total",
		"mcss_journal_replayed_records_total",
		"mcss_journal_records_total",
	} {
		if v := metricValue(t, page, m); v <= 0 {
			t.Errorf("%s = %v, want > 0 after recovery", m, v)
		}
	}
	d2.mu.RLock()
	serveCancelCheck := d2.ready
	d2.mu.RUnlock()
	if !serveCancelCheck {
		t.Error("daemon not ready after resumed replay")
	}
	_ = done
}

// TestDaemonDegradedMode corrupts the journal past its last commit and
// requires the restarted daemon to refuse readiness with a degraded
// status while still serving the recovered state read-only on /state.
func TestDaemonDegradedMode(t *testing.T) {
	dir := t.TempDir()
	o := timelineOpts(dir)
	o.epochs = 3
	d1 := newDaemon(nil)
	if err := d1.load(context.Background(), o); err != nil {
		t.Fatalf("seed replay: %v", err)
	}
	d1.mu.RLock()
	seededFP := d1.state.Fingerprint()
	d1.mu.RUnlock()

	// A structurally framed record whose CRC is wrong: unambiguous
	// corruption, not a torn tail.
	path := filepath.Join(dir, "apply.journal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, 4)
	frame = binary.LittleEndian.AppendUint32(frame, 0xDEADBEEF)
	frame = append(frame, 'D', 0, 0, 0)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := newDaemon(nil)
	base, _ := startServer(t, d2, context.Background())
	if err := d2.load(context.Background(), o); err != nil {
		t.Fatalf("degraded load must not error (it serves read-only), got %v", err)
	}
	code, body := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("readyz on corrupt journal = %d %q, want 503 degraded", code, body)
	}
	code, body = get(t, base+"/state")
	if code != http.StatusOK {
		t.Fatalf("state = %d, want 200", code)
	}
	var doc stateDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("state JSON: %v", err)
	}
	if !doc.Degraded || doc.Ready {
		t.Errorf("state = ready %v degraded %v, want degraded read-only", doc.Ready, doc.Degraded)
	}
	if doc.Fingerprint != seededFP {
		t.Errorf("degraded state fingerprint %s, want last durable %s", doc.Fingerprint, seededFP)
	}
}

// TestRequestTimeoutMiddleware pins the -request-timeout contract: normal
// handlers run under a deadline context, pprof streams are exempt.
func TestRequestTimeoutMiddleware(t *testing.T) {
	d := newDaemon(nil)
	d.reqTimeout = time.Minute
	var deadlines = map[string]bool{}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		deadlines[r.URL.Path] = ok
	})
	h := d.withTimeout(inner)
	for _, path := range []string{"/state", "/metrics", "/debug/pprof/profile"} {
		r, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		h.ServeHTTP(nopResponseWriter{}, r)
	}
	if !deadlines["/state"] || !deadlines["/metrics"] {
		t.Errorf("deadlines = %v, want /state and /metrics bounded", deadlines)
	}
	if deadlines["/debug/pprof/profile"] {
		t.Error("pprof stream must be exempt from the request timeout")
	}
}

type nopResponseWriter struct{}

func (nopResponseWriter) Header() http.Header         { return http.Header{} }
func (nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (nopResponseWriter) WriteHeader(int)             {}
