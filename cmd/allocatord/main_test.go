package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// startServer runs the daemon's HTTP surface on an ephemeral port and
// returns its base URL plus the channel serve's result lands on.
func startServer(t *testing.T, d *daemon, ctx context.Context) (string, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx, ln) }()
	return "http://" + ln.Addr().String(), done
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts the value of the first sample line whose name (and
// optional label set) starts with prefix.
func metricValue(t *testing.T, page, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample with prefix %q on the metrics page", prefix)
	return 0
}

// TestDaemonTimelineReplay is the end-to-end daemon check: a diurnal
// timeline replayed through the incremental elastic controller must leave
// non-zero incremental-repair, scale-decision, and billing counters on
// /metrics, flip /readyz after the first epoch, serve a fingerprinted
// /state, and drain cleanly (serve returns nil) on cancellation — the
// in-process equivalent of SIGTERM.
func TestDaemonTimelineReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := newDaemon(nil)
	base, done := startServer(t, d, ctx)

	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before load = %d, want 503", code)
	}
	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q, want 200 ok", code, body)
	}

	o := options{
		dataset: "twitter", scale: 0.002, tau: 10,
		diurnal: true, epochs: 8, epochMinutes: 60,
		incremental: true,
	}
	if err := d.load(ctx, o); err != nil {
		t.Fatalf("timeline replay: %v", err)
	}

	if code, body := get(t, base+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after replay = %d %q, want 200 ready", code, body)
	}

	_, page := get(t, base+"/metrics")
	for _, m := range []string{
		"mcss_controller_epochs_total",
		"mcss_incremental_epochs_total",
		"mcss_billing_vms_acquired_total",
		"mcss_billing_started_hours_total",
		"mcss_solve_stage_runs_total",
		"mcss_migration_pairs_kept_total",
	} {
		if v := metricValue(t, page, m); v <= 0 {
			t.Errorf("%s = %v, want > 0", m, v)
		}
	}
	if v := metricValue(t, page, "mcss_controller_epochs_total"); v != 8 {
		t.Errorf("controller epochs = %v, want 8", v)
	}
	// The diurnal cycle ramps up and back down, so the controller must
	// have decided to scale in at least one direction.
	if up := metricValue(t, page, `mcss_controller_scale_decisions_total{direction="up"}`); up <= 0 {
		t.Errorf("scale-up decisions = %v, want > 0", up)
	}

	code, body := get(t, base+"/state")
	if code != http.StatusOK {
		t.Fatalf("state = %d, want 200", code)
	}
	var doc stateDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("state JSON: %v\n%s", err, body)
	}
	if !doc.Ready || doc.Fingerprint == "" || doc.VMs <= 0 || doc.Pairs <= 0 {
		t.Errorf("state = %+v, want ready with fingerprint, VMs, and pairs", doc)
	}
	if doc.Epoch != 8 || doc.NumEpochs != 8 {
		t.Errorf("state epoch = %d/%d, want 8/8", doc.Epoch, doc.NumEpochs)
	}

	if code, body := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline = %d, want 200 with content", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after cancel = %v, want nil (clean drain)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain within 10s of cancellation")
	}
}

// TestDaemonSolveAndDump covers the one-shot solve mode plus -metrics-dump:
// readiness flips only after the solve, the stage histograms are populated,
// and the final registry lands on disk as JSON.
func TestDaemonSolveAndDump(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := newDaemon(nil)
	base, done := startServer(t, d, ctx)

	o := options{dataset: "spotify", scale: 0.005, tau: 50}
	if err := d.load(ctx, o); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after solve = %d, want 200", code)
	}
	_, page := get(t, base+"/metrics")
	if v := metricValue(t, page, `mcss_solve_stage_units_total{stage="stage1"}`); v <= 0 {
		t.Errorf("stage1 units = %v, want > 0", v)
	}
	if v := metricValue(t, page, "mcss_alloc_vms"); v <= 0 {
		t.Errorf("alloc VMs gauge = %v, want > 0", v)
	}

	dump := filepath.Join(t.TempDir(), "metrics.json")
	if err := d.dumpMetrics(dump); err != nil {
		t.Fatalf("dump: %v", err)
	}
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if _, ok := doc["mcss_alloc_vms"]; !ok {
		t.Errorf("dump missing mcss_alloc_vms; keys = %d", len(doc))
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve after cancel = %v, want nil", err)
	}
}

// TestDaemonFallbackCounter replays with an absurdly tight regret bound so
// the incremental path must fall back to full re-solves, and asserts the
// fallback counter surfaces on /metrics — the acceptance check that a
// diurnal replay exposes non-zero fallback telemetry.
func TestDaemonFallbackCounter(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := newDaemon(nil)
	base, done := startServer(t, d, ctx)

	o := options{
		dataset: "twitter", scale: 0.002, tau: 10,
		diurnal: true, epochs: 6, epochMinutes: 60,
		incremental: true, maxRegret: 1e-12,
	}
	if err := d.load(ctx, o); err != nil {
		t.Fatalf("timeline replay: %v", err)
	}
	_, page := get(t, base+"/metrics")
	if v := metricValue(t, page, "mcss_solve_fallbacks_total"); v <= 0 {
		t.Errorf("mcss_solve_fallbacks_total = %v, want > 0 under a 1e-12 regret bound", v)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve after cancel = %v, want nil", err)
	}
}

// TestDaemonUnknownDataset pins the error path: load must fail, readiness
// must stay down.
func TestDaemonUnknownDataset(t *testing.T) {
	d := newDaemon(nil)
	err := d.load(context.Background(), options{dataset: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("load = %v, want unknown dataset error", err)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.ready {
		t.Error("daemon became ready despite failed load")
	}
}

// TestRunOnceExitsCleanly exercises the full run() path in -once mode on
// an ephemeral port: the process-level contract that a completed replay
// (like a SIGTERM) ends with a nil error and therefore exit code 0.
func TestRunOnceExitsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("full run() replay is slow under -short")
	}
	dump := filepath.Join(t.TempDir(), "final.json")
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-dataset", "twitter", "-scale", "0.002", "-tau", "10",
		"-diurnal", "-epochs", "4", "-once",
		"-metrics-dump", dump,
		"-log-level", "error",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run -once = %v, want nil", err)
	}
	if _, err := os.Stat(dump); err != nil {
		t.Errorf("metrics dump not written: %v", err)
	}
}
