// Command allocatord is the serving daemon around the allocator: it loads
// a cluster snapshot, solves a workload, or replays a timeline through the
// elastic controller, holds the resulting cluster state live, and exposes
// the observability surface over HTTP — Prometheus text /metrics, liveness
// and readiness probes, a JSON /state summary, and pprof.
//
// Readiness is tied to the first allocation: /healthz answers as soon as
// the listener is up, /readyz stays 503 until the snapshot is restored,
// the initial solve finishes, or the first timeline epoch lands. SIGTERM
// and SIGINT drain gracefully and exit 0 — the daemon treats a signal as
// a normal shutdown, not an interrupted solve.
//
// Examples:
//
//	allocatord -dataset twitter -scale 0.01 -tau 10
//	allocatord -snapshot cluster.json -addr :9090
//	allocatord -dataset twitter -scale 0.005 -diurnal -epochs 24 -epoch-interval 2s -incremental
//	allocatord -timeline day.timeline.gz -once -metrics-dump final.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/pubsub-systems/mcss/internal/cli"
	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/deploy"
	"github.com/pubsub-systems/mcss/internal/elastic"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/obs"
	"github.com/pubsub-systems/mcss/internal/obs/slogx"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/spot"
	"github.com/pubsub-systems/mcss/internal/timeline"
	"github.com/pubsub-systems/mcss/internal/topo"
	"github.com/pubsub-systems/mcss/internal/tracegen"
	"github.com/pubsub-systems/mcss/internal/traceio"
	"github.com/pubsub-systems/mcss/internal/workload"
)

func main() {
	os.Exit(cli.ExitCode("allocatord", run(os.Args[1:], os.Stderr), os.Stderr))
}

// options collects the parsed flag set — one struct so the daemon's load
// path is testable without a real command line.
type options struct {
	addr     string
	snapshot string
	trace    string
	dataset  string
	scale    float64
	tau      int64

	timelinePath  string
	diurnal       bool
	epochs        int
	epochMinutes  int64
	epochInterval time.Duration
	incremental   bool
	maxRegret     float64
	once          bool
	metricsDump   string

	dataDir        string
	journalSync    int
	compactEpochs  int
	requestTimeout time.Duration

	spot       bool
	spotMarket string
	chaosSeed  int64

	topologyPath string
	sloMillis    int64
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("allocatord", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":9090", "HTTP listen address")
	fs.StringVar(&o.snapshot, "snapshot", "", "cluster state file (a snapshot plan): restore without solving")
	fs.StringVar(&o.trace, "trace", "", "workload trace file: solve at startup")
	fs.StringVar(&o.dataset, "dataset", "", "synthetic dataset: twitter or spotify")
	fs.Float64Var(&o.scale, "scale", 0.01, "synthetic dataset scale factor")
	fs.Int64Var(&o.tau, "tau", 50, "satisfaction threshold τ (events/hour)")
	fs.StringVar(&o.timelinePath, "timeline", "", "timeline file: replay epochs through the elastic controller")
	fs.BoolVar(&o.diurnal, "diurnal", false, "modulate the dataset into a diurnal timeline and replay it")
	fs.IntVar(&o.epochs, "epochs", 24, "diurnal timeline epochs")
	fs.Int64Var(&o.epochMinutes, "epoch-minutes", 60, "diurnal epoch duration (virtual minutes)")
	fs.DurationVar(&o.epochInterval, "epoch-interval", 0, "wall-clock pause between replayed epochs (0 = replay at full speed)")
	fs.BoolVar(&o.incremental, "incremental", false, "use the incremental re-solve path for per-epoch candidates")
	fs.Float64Var(&o.maxRegret, "max-regret", 0, "regret bound triggering full-solve fallback (0 = incremental default)")
	fs.BoolVar(&o.once, "once", false, "exit after the timeline replay completes instead of serving until signalled")
	fs.BoolVar(&o.spot, "spot", false, "timeline replay on a spot market: price schedule, chaos reclamations, group repair")
	fs.StringVar(&o.spotMarket, "spot-market", "", "spot market file for -spot (empty = generate one matched to the timeline)")
	fs.Int64Var(&o.chaosSeed, "chaos-seed", 1, "reclamation draw seed for -spot")
	fs.StringVar(&o.topologyPath, "topology", "", "multi-region topology file: solve with the topo strategies and bill cross-region egress")
	fs.Int64Var(&o.sloMillis, "slo", 0, "latency SLO ceiling in ms on modeled delivery RTT (0 = none; needs -topology)")
	fs.StringVar(&o.metricsDump, "metrics-dump", "", "write the final metrics registry as JSON to this file on exit")
	fs.StringVar(&o.dataDir, "data-dir", "", "directory for the durable apply journal: replay it on startup and journal every apply")
	fs.IntVar(&o.journalSync, "journal-sync-every", 8, "fsync the journal every N step-done records (plan boundaries always sync)")
	fs.IntVar(&o.compactEpochs, "journal-compact-epochs", 8, "compact the journal to a snapshot every N epochs (0 = never)")
	fs.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline on HTTP handlers (0 = none)")
	logLevel := slogx.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := slogx.Setup(stderr, *logLevel)

	ctx, stop := cli.Context(0)
	defer stop()

	d := newDaemon(logger)
	d.reqTimeout = o.requestTimeout
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())

	serveErr := make(chan error, 1)
	go func() { serveErr <- d.serve(ctx, ln) }()

	if err := d.load(ctx, o); err != nil && !errors.Is(err, context.Canceled) {
		stop()
		<-serveErr
		return err
	}
	if o.once {
		stop()
	}
	err = <-serveErr
	if dumpErr := d.dumpMetrics(o.metricsDump); dumpErr != nil && err == nil {
		err = dumpErr
	}
	return err
}

// daemon holds the live cluster state and the metrics registry behind the
// HTTP surface. All fields behind mu; the registry is internally safe.
type daemon struct {
	m   *obs.Metrics
	log *slog.Logger
	// reqTimeout bounds each HTTP request with its own deadline context
	// (0 = none), so a slow marshal cannot wedge the drain path.
	reqTimeout time.Duration

	mu        sync.RWMutex
	state     *deploy.State
	model     pricing.Model
	topology  *topo.Topology
	sloMillis int64
	epoch     int
	epochs    int
	ready     bool
	degraded  bool
	status    string // the /readyz reason while not ready
}

func newDaemon(logger *slog.Logger) *daemon {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &daemon{m: obs.NewMetrics(nil), log: logger, status: "starting: no allocation yet"}
}

// setState installs a new live state, refreshes the allocation gauges, and
// flips readiness on the first call.
func (d *daemon) setState(st *deploy.State, model pricing.Model, epoch, epochs int) {
	d.m.RecordAllocation(st.Allocation, model)
	d.mu.Lock()
	if d.topology != nil {
		d.m.RecordTopology(d.topology, st.Allocation)
	}
	d.state, d.model = st, model
	d.epoch, d.epochs = epoch, epochs
	d.ready = true
	d.mu.Unlock()
}

// setStatus updates the not-ready reason /readyz serves.
func (d *daemon) setStatus(status string) {
	d.mu.Lock()
	d.status = status
	d.mu.Unlock()
}

// setDegraded installs a recovered state read-only: /state serves it, but
// the daemon never becomes ready and refuses to run new applies — the
// mode a journal corrupt past its last valid record puts the daemon in.
func (d *daemon) setDegraded(rec *deploy.Recovery, reason error) {
	d.mu.Lock()
	if rec.State != nil && rec.State.Allocation != nil {
		d.state, d.model = rec.State, rec.Model
		d.epoch = int(rec.Epoch)
	}
	d.degraded = true
	d.ready = false
	d.status = fmt.Sprintf("degraded: %v", reason)
	d.mu.Unlock()
}

// applyTopology loads the -topology file (empty path = no-op), stores it as
// the daemon's active topology, and rewires the config for multi-region
// solving: the fleet replicated per region, the region-aware strategies,
// the SLO ceiling, and egress billing through cfg.Topology.
func (d *daemon) applyTopology(o options, cfg *core.Config) error {
	if o.topologyPath == "" {
		return nil
	}
	t, err := traceio.LoadTopology(o.topologyPath)
	if err != nil {
		return fmt.Errorf("loading topology: %w", err)
	}
	cfg.Topology = t
	cfg.LatencySLOMillis = o.sloMillis
	if t.NumRegions() > 1 {
		base := cfg.Fleet
		if base.IsZero() {
			base = cfg.Model.SingleFleet()
		}
		if cfg.Fleet, err = topo.RegionalFleet(base, t); err != nil {
			return err
		}
		s1, ok := core.StrategyByName(topo.Stage1Name)
		if !ok {
			return fmt.Errorf("topo strategy %q not registered", topo.Stage1Name)
		}
		s2, ok := core.StrategyByName(topo.Stage2Name)
		if !ok {
			return fmt.Errorf("topo strategy %q not registered", topo.Stage2Name)
		}
		cfg.Stage1Strategy = s1
		cfg.Stage2Strategy = s2
	}
	d.mu.Lock()
	d.topology = t
	d.sloMillis = o.sloMillis
	d.mu.Unlock()
	d.m.RecordTopology(t, nil)
	d.log.Info("topology loaded", "path", o.topologyPath,
		"regions", t.NumRegions(), "slo_ms", o.sloMillis)
	return nil
}

// journalRig bundles the open apply journal with the executor every
// journaled apply runs through.
type journalRig struct {
	j            *deploy.Journal
	exec         deploy.Executor
	compactEvery int
}

// applyOptions is the per-epoch option set the elastic controller's apply
// hook hands to deploy.Apply.
func (rig *journalRig) applyOptions(epoch int) []deploy.ApplyOption {
	return []deploy.ApplyOption{
		deploy.WithJournal(rig.j),
		deploy.WithExecutor(rig.exec),
		deploy.WithApplyEpoch(epoch),
	}
}

// openJournal recovers and opens the apply journal under -data-dir. It
// returns the recovery (nil when the journal is fresh) and the rig for
// journaled applies. A journal corrupt past its last valid record puts
// the daemon in degraded mode: the partial recovery is served read-only
// and the returned rig is nil.
func (d *daemon) openJournal(o options) (*deploy.Recovery, *journalRig, error) {
	if err := os.MkdirAll(o.dataDir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(o.dataDir, "apply.journal")
	var rec *deploy.Recovery
	if _, err := os.Stat(path); err == nil {
		d.setStatus("recovering: replaying apply journal")
		start := time.Now()
		rec, err = traceio.RecoverJournal(path)
		if err != nil {
			if errors.Is(err, deploy.ErrCorruptJournal) && rec != nil {
				d.m.RecordRecovery(rec)
				d.setDegraded(rec, err)
				d.log.Error("journal corrupt; entering degraded read-only mode",
					"path", path, "records", rec.Records, "err", err)
				return nil, nil, nil
			}
			return nil, nil, err
		}
		d.m.RecordRecovery(rec)
		d.log.Info("journal recovered", "path", path, "records", rec.Records,
			"committed", rec.Committed, "snapshots", rec.Snapshots,
			"epoch", rec.Epoch, "in_flight", rec.InFlight != nil,
			"torn", rec.Torn, "fingerprint", rec.State.Fingerprint(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
	j, err := traceio.OpenJournal(path, deploy.JournalOptions{
		SyncEvery: o.journalSync,
		Hooks:     d.m.JournalHooks(),
	})
	if err != nil {
		return nil, nil, err
	}
	onRetry, onGiveUp := d.m.ApplyRetryHooks()
	exec := deploy.NewRetryExecutor(deploy.NopExecutor, deploy.RetryConfig{
		StepTimeout: o.requestTimeout,
		OnRetry: func(step, attempt int, err error) {
			onRetry(step, attempt, err)
			d.log.Warn("step retry", "step", step, "attempt", attempt, "err", err)
		},
		OnGiveUp: onGiveUp,
	})
	return rec, &journalRig{j: j, exec: exec, compactEvery: o.compactEpochs}, nil
}

// load dispatches on the input mode: snapshot restore, one-shot solve, or
// timeline replay through the elastic controller. With -data-dir the
// journal is replayed first and every apply is journaled.
func (d *daemon) load(ctx context.Context, o options) error {
	var rec *deploy.Recovery
	var rig *journalRig
	if o.dataDir != "" {
		var err error
		rec, rig, err = d.openJournal(o)
		if err != nil {
			return err
		}
		if rig == nil {
			return nil // degraded: serve the partial recovery read-only
		}
		defer func() {
			if cerr := rig.j.Close(); cerr != nil {
				d.log.Error("journal close", "err", cerr)
			}
		}()
	}
	switch {
	case o.snapshot != "":
		plan, err := traceio.LoadPlan(o.snapshot)
		if err != nil {
			return err
		}
		d.setState(plan.Target, plan.Model, 0, 0)
		if rig != nil {
			if err := rig.j.AppendSnapshot(-1, plan); err != nil {
				return err
			}
		}
		d.log.Info("snapshot restored", "path", o.snapshot,
			"fingerprint", plan.Target.Fingerprint(), "vms", plan.Target.Allocation.NumVMs())
		return nil
	case o.timelinePath != "" || o.diurnal:
		return d.runTimeline(ctx, o, rec, rig)
	default:
		w, err := loadWorkload(o.trace, o.dataset, o.scale)
		if err != nil {
			return err
		}
		model := experiments.ModelFor(pricing.C3Large, w)
		cfg := core.DefaultConfig(o.tau, model)
		cfg.Observer = d.m.Observer()
		if err := d.applyTopology(o, &cfg); err != nil {
			return err
		}
		start := time.Now()
		res, err := core.SolveContext(ctx, w, cfg)
		if err != nil {
			return err
		}
		st := deploy.NewState(w, res.Allocation)
		d.setState(st, model, 0, 0)
		if rig != nil {
			snap, err := deploy.Snapshot(cfg, st)
			if err != nil {
				return err
			}
			if err := rig.j.AppendSnapshot(-1, snap); err != nil {
				return err
			}
		}
		d.log.Info("solved", "topics", w.NumTopics(), "subscribers", w.NumSubscribers(),
			"vms", res.Allocation.NumVMs(), "fingerprint", st.Fingerprint(),
			"elapsed", time.Since(start).Round(time.Millisecond))
		return nil
	}
}

// runTimeline drives the elastic controller epoch by epoch via the Walk
// stepper, pushing every epoch's report, allocation, and ledger totals into
// the registry and updating the live state the endpoints serve. With a
// journal rig every epoch's plan application is journaled through the
// retrying executor; a recovery resumes the walk — finishing a half-applied
// plan first — at the epoch after the last durable one.
func (d *daemon) runTimeline(ctx context.Context, o options, rec *deploy.Recovery, rig *journalRig) error {
	tl, err := loadTimeline(o)
	if err != nil {
		return err
	}
	env, err := tl.Envelope()
	if err != nil {
		return err
	}
	model := experiments.ModelFor(pricing.C3Large, env)
	cfg := core.DefaultConfig(o.tau, model)
	cfg.Fleet = experiments.FleetFor(env)
	cfg.Observer = d.m.Observer()
	if err := d.applyTopology(o, &cfg); err != nil {
		return err
	}
	policy := elastic.DefaultPolicy()
	policy.Incremental = o.incremental
	policy.IncrementalMaxRegret = o.maxRegret

	var sched *spot.Schedule
	var chaos *spot.Chaos
	if o.spot {
		var market *spot.Market
		if o.spotMarket != "" {
			market, err = traceio.LoadSpotMarket(o.spotMarket)
		} else {
			// A market matched to the timeline, using the experiment's
			// generator settings so a replay exercises the same market
			// family `experiments -fig spot` reports on.
			market, err = spot.GenerateMarket(cfg.Fleet,
				experiments.SpotMarketConfig(tl.NumEpochs(), tl.EpochMinutes))
		}
		if err != nil {
			return err
		}
		strat, ok := core.StrategyByName(spot.StrategyName)
		if !ok {
			return fmt.Errorf("spot strategy %q not registered", spot.StrategyName)
		}
		cfg.Stage2Strategy = strat
		if sched, err = spot.NewSchedule(market, cfg.Fleet, spot.ScheduleConfig{}); err != nil {
			return err
		}
		if chaos, err = spot.NewChaos(market, o.chaosSeed); err != nil {
			return err
		}
	}

	ctl := elastic.NewController(cfg, policy)
	if o.spot {
		ctl.SetFleetSchedule(sched)
		ctl.SetChaos(chaos, 5)
	}
	if rig != nil {
		ctl.SetApplyHook(rig.applyOptions)
	}
	var wk *elastic.Walk
	if rec != nil {
		wk, err = ctl.ResumeRecovery(ctx, tl, rec)
	} else {
		wk, err = ctl.Start(ctx, tl)
	}
	if err != nil {
		return err
	}
	startEpoch := wk.NextEpoch()
	if rec != nil && startEpoch > 0 {
		// Serve the recovered allocation before the first stepped epoch.
		st := deploy.NewState(wk.Workload(), wk.Allocation())
		d.setState(st, model, startEpoch, tl.NumEpochs())
		d.log.Info("timeline resumed", "epoch", startEpoch, "fingerprint", st.Fingerprint())
	}
	d.log.Info("timeline replay starting", "epochs", tl.NumEpochs(), "start_epoch", startEpoch,
		"epoch_minutes", tl.EpochMinutes, "incremental", o.incremental, "spot", o.spot)
	var reclaimed, groups int
	var lost int64
	for !wk.Done() {
		ep, err := wk.Step(ctx)
		if err != nil {
			return err
		}
		d.m.RecordEpochReport(ep)
		d.m.RecordLedger(wk.Ledger())
		d.setState(deploy.NewState(wk.Workload(), wk.Allocation()), model, ep.Epoch+1, tl.NumEpochs())
		if rig != nil && rig.compactEvery > 0 && (ep.Epoch+1)%rig.compactEvery == 0 {
			snap, err := deploy.Snapshot(cfg, deploy.NewState(wk.Workload(), wk.Allocation()))
			if err != nil {
				return err
			}
			if err := rig.j.Compact(int64(ep.Epoch), snap); err != nil {
				return err
			}
			d.log.Info("journal compacted", "epoch", ep.Epoch)
		}
		if o.spot {
			reclaimed += ep.ReclaimedVMs
			groups += ep.ReclaimGroups
			lost += ep.LostPairMinutes
			d.log.Info("epoch", "n", ep.Epoch, "adopted", ep.Adopted, "forced", ep.Forced,
				"active_vms", ep.ActiveVMs, "billed_vms", ep.BilledVMs,
				"moved", ep.PairsMoved, "repriced", ep.Repriced,
				"reclaimed", ep.ReclaimedVMs, "repaired_pairs", ep.RepairedPairs,
				"lost_pair_min", ep.LostPairMinutes,
				"elapsed", ep.Duration.Round(time.Millisecond))
		} else {
			d.log.Info("epoch", "n", ep.Epoch, "adopted", ep.Adopted, "forced", ep.Forced,
				"active_vms", ep.ActiveVMs, "billed_vms", ep.BilledVMs,
				"moved", ep.PairsMoved, "fallback", ep.CandidateStats.Fallback,
				"elapsed", ep.Duration.Round(time.Millisecond))
		}
		if o.epochInterval > 0 && !wk.Done() {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(o.epochInterval):
			}
		}
	}
	rep, err := wk.Finish()
	if err != nil {
		return err
	}
	d.m.RecordLedger(rep.Ledger)
	if o.spot {
		d.log.Info("timeline complete", "epochs", tl.NumEpochs(),
			"total_cost", rep.TotalCost().String(), "started_hours", rep.Ledger.StartedHours(),
			"pairs_moved", rep.TotalMoved(), "reclaimed_vms", reclaimed,
			"reclaim_groups", groups, "lost_pair_minutes", lost)
	} else {
		d.log.Info("timeline complete", "epochs", tl.NumEpochs(),
			"total_cost", rep.TotalCost().String(), "started_hours", rep.Ledger.StartedHours(),
			"pairs_moved", rep.TotalMoved())
	}
	return nil
}

// serve runs the HTTP server until ctx is cancelled, then drains it
// gracefully. A signal-driven cancellation returns nil: for a daemon that
// is a clean exit, not an interruption.
func (d *daemon) serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           d.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		d.log.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /state", d.handleState)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return d.logRequests(d.withTimeout(mux))
}

// withTimeout derives a per-request deadline context so no handler can
// outlive -request-timeout. pprof profile/trace streams are exempt —
// their duration is the point.
func (d *daemon) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d.reqTimeout > 0 && !strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
			ctx, cancel := context.WithTimeout(r.Context(), d.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.m.Registry.WritePrometheus(w); err != nil {
		d.log.Error("metrics write", "err", err)
	}
}

func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (d *daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	ready, status := d.ready, d.status
	d.mu.RUnlock()
	if !ready {
		http.Error(w, status, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// stateDoc is the /state JSON shape: the live cluster's fingerprint plus a
// small cost/size summary — enough for a dashboard or a smoke test without
// scraping the full metrics page.
type stateDoc struct {
	Ready         bool    `json:"ready"`
	Degraded      bool    `json:"degraded,omitempty"`
	Fingerprint   string  `json:"fingerprint"`
	Epoch         int     `json:"epoch"`
	NumEpochs     int     `json:"num_epochs,omitempty"`
	VMs           int     `json:"vms"`
	Pairs         int64   `json:"pairs"`
	HourlyRateUSD float64 `json:"hourly_rate_usd"`
	CostUSD       float64 `json:"cost_usd"`

	// Multi-region surface: the active topology's regions and the live
	// allocation's per-region VM counts. Absent without -topology.
	TopologyRegions []string       `json:"topology_regions,omitempty"`
	RegionVMs       map[string]int `json:"region_vms,omitempty"`
	LatencySLOMs    int64          `json:"latency_slo_ms,omitempty"`
}

func (d *daemon) handleState(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	doc := stateDoc{Ready: d.ready, Degraded: d.degraded, Epoch: d.epoch, NumEpochs: d.epochs}
	if d.state != nil {
		doc.Fingerprint = d.state.Fingerprint()
		if alloc := d.state.Allocation; alloc != nil {
			doc.VMs = alloc.NumVMs()
			for _, vm := range alloc.VMs {
				doc.Pairs += int64(vm.NumPairs())
			}
			doc.HourlyRateUSD = alloc.HourlyRentalRate(d.model).USD()
			doc.CostUSD = alloc.Cost(d.model).USD()
		}
	}
	if t := d.topology; t != nil {
		doc.TopologyRegions = t.Regions()
		doc.LatencySLOMs = d.sloMillis
		if d.state != nil && d.state.Allocation != nil {
			doc.RegionVMs = make(map[string]int, t.NumRegions())
			for _, vm := range d.state.Allocation.VMs {
				doc.RegionVMs[t.RegionName(core.RegionOfInstance(t, vm.Instance))]++
			}
		}
	}
	d.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		d.log.Error("state write", "err", err)
	}
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (d *daemon) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		d.log.Debug("request", "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "elapsed", time.Since(start).Round(time.Microsecond))
	})
}

// dumpMetrics writes the final registry as JSON — the same shape the
// -metrics-dump flags of experiments and simulate produce.
func (d *daemon) dumpMetrics(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.m.Registry.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadWorkload(tracePath, dataset string, scale float64) (*workload.Workload, error) {
	switch {
	case tracePath != "":
		return traceio.Load(tracePath)
	case strings.EqualFold(dataset, "twitter"):
		return tracegen.Twitter(tracegen.DefaultTwitterConfig().Scale(scale))
	case strings.EqualFold(dataset, "spotify"):
		return tracegen.Spotify(tracegen.DefaultSpotifyConfig().Scale(scale))
	case dataset == "":
		return nil, fmt.Errorf("need -snapshot, -trace, -dataset, or -timeline")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func loadTimeline(o options) (*timeline.Timeline, error) {
	if o.timelinePath != "" {
		return traceio.LoadTimeline(o.timelinePath)
	}
	base, err := loadWorkload(o.trace, o.dataset, o.scale)
	if err != nil {
		return nil, err
	}
	cfg := experiments.DiurnalModulation()
	cfg.Epochs = o.epochs
	cfg.EpochMinutes = o.epochMinutes
	if cfg.FlashEpoch >= cfg.Epochs {
		cfg.FlashEpoch = cfg.Epochs / 2
	}
	return tracegen.Diurnal(base, cfg)
}
