// Command tracegen synthesizes pub/sub workload traces with the
// distributional shape of the MCSS paper's Spotify and Twitter datasets and
// writes them in the traceio v1 format (gzip when the output ends in .gz).
// With -epochs it instead modulates the trace into a diurnal timeline
// (activity curve, subscriber churn, optional flash crowd) and writes the
// traceio timeline format for cmd/simulate -timeline.
//
// Examples:
//
//	tracegen -dataset twitter -scale 0.5 -out twitter.trace.gz
//	tracegen -dataset spotify -seed 99 -out spotify.trace
//	tracegen -dataset random -topics 100 -subscribers 500 -out small.trace
//	tracegen -dataset twitter -scale 0.05 -epochs 24 -flash-epoch 5 -out day.timeline.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/cli"
	"github.com/pubsub-systems/mcss/internal/obs"
	"github.com/pubsub-systems/mcss/internal/obs/slogx"
	"github.com/pubsub-systems/mcss/internal/workload"
)

func main() {
	os.Exit(cli.ExitCode("tracegen", run(os.Args[1:]), os.Stderr))
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "twitter", "dataset: twitter, spotify, or random")
		scale   = fs.Float64("scale", 1.0, "scale factor for twitter/spotify")
		seed    = fs.Int64("seed", 0, "random seed (0 = dataset default)")
		out     = fs.String("out", "", "output path (required; .gz enables compression)")
		topics  = fs.Int("topics", 100, "topic count (random dataset)")
		subs    = fs.Int("subscribers", 500, "subscriber count (random dataset)")
		regions = fs.Int("regions", 1, "tag endpoints across this many regions (zipf-skewed geography; 1 = untagged)")

		epochs       = fs.Int("epochs", 0, "emit a diurnal timeline with this many epochs (0 = single trace)")
		epochMinutes = fs.Int64("epoch-minutes", 60, "timeline epoch duration")
		trough       = fs.Float64("trough", 0.25, "timeline trough-to-peak activity ratio")
		churn        = fs.Float64("churn", 0.35, "fraction of subscribers asleep at the trough")
		flashEpoch   = fs.Int("flash-epoch", -1, "epoch of a flash crowd (-1 = none)")
		flashTopics  = fs.Int("flash-topics", 3, "hottest topics the flash crowd hits")
		flashFactor  = fs.Float64("flash-factor", 3, "flash crowd rate multiplier")

		timeout  = fs.Duration("timeout", 0, "abort generation after this duration (0 = none)")
		progress = fs.Bool("progress", false, "report generation phases to stderr")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics on this address for the life of the run")
	)
	logLevel := slogx.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Setup(os.Stderr, *logLevel)
	if *out == "" {
		return fmt.Errorf("need -out")
	}
	if *metricsAddr != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metricsAddr, obs.NewMetrics(nil).Registry)
		if err != nil {
			return err
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "serving metrics on %s\n", addr)
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	note := func(format string, args ...any) {
		if *progress {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	note("[generate] dataset=%s scale=%g", *dataset, *scale)

	var (
		w   *mcss.Workload
		err error
	)
	switch strings.ToLower(*dataset) {
	case "twitter":
		cfg := mcss.DefaultTwitterTrace().Scale(*scale)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		w, err = mcss.GenerateTwitter(cfg)
	case "spotify":
		cfg := mcss.DefaultSpotifyTrace().Scale(*scale)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		w, err = mcss.GenerateSpotify(cfg)
	case "random":
		w, err = mcss.GenerateRandom(mcss.RandomTraceConfig{
			Topics: *topics, Subscribers: *subs, MaxFollowings: 5, MaxRate: 1000, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("generated workload invalid: %w", err)
	}
	note("[generate] %d topics / %d subscribers", w.NumTopics(), w.NumSubscribers())
	if *regions > 1 {
		w, err = mcss.TagRegions(w, *regions, *seed)
		if err != nil {
			return err
		}
		note("[regions] tagged endpoints across %d regions", *regions)
	}
	if *epochs > 0 {
		cfg := mcss.DefaultDiurnalTrace()
		cfg.Epochs = *epochs
		cfg.EpochMinutes = *epochMinutes
		cfg.TroughRatio = *trough
		cfg.ChurnFraction = *churn
		cfg.FlashEpoch = *flashEpoch
		cfg.FlashTopics = *flashTopics
		cfg.FlashFactor = *flashFactor
		if *seed != 0 {
			cfg.Seed = *seed
		}
		tl, err := mcss.GenerateDiurnal(w, cfg)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		note("[modulate] %d epochs × %d min", tl.NumEpochs(), tl.EpochMinutes)
		if err := mcss.SaveTimeline(tl, *out); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d epochs × %d min over %d topics / %d subscribers (peak epoch %d)\n",
			*out, tl.NumEpochs(), tl.EpochMinutes, w.NumTopics(), w.NumSubscribers(), tl.PeakEpoch())
		return nil
	}
	if err := mcss.SaveTrace(w, *out); err != nil {
		return err
	}

	var maxRate, maxFollowers int64
	for t := 0; t < w.NumTopics(); t++ {
		if r := w.Rate(workload.TopicID(t)); r > maxRate {
			maxRate = r
		}
		if f := int64(w.Followers(workload.TopicID(t))); f > maxFollowers {
			maxFollowers = f
		}
	}
	fmt.Printf("wrote %s: %d topics, %d subscribers, %d pairs\n",
		*out, w.NumTopics(), w.NumSubscribers(), w.NumPairs())
	fmt.Printf("total event rate %d events/h, max topic rate %d, max followers %d\n",
		w.TotalEventRate(), maxRate, maxFollowers)
	fmt.Printf("mean followings %.2f, mean followers %.2f\n",
		float64(w.NumPairs())/float64(w.NumSubscribers()),
		float64(w.NumPairs())/float64(w.NumTopics()))
	return nil
}
