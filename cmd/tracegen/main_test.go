package main

import (
	"path/filepath"
	"testing"

	mcss "github.com/pubsub-systems/mcss"
)

func TestRunGeneratesLoadableTraces(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name string
		args []string
	}{
		{"twitter gz", []string{"-dataset", "twitter", "-scale", "0.01", "-out", filepath.Join(dir, "tw.trace.gz")}},
		{"spotify plain", []string{"-dataset", "spotify", "-scale", "0.01", "-out", filepath.Join(dir, "sp.trace")}},
		{"spotify binary", []string{"-dataset", "spotify", "-scale", "0.01", "-out", filepath.Join(dir, "sp.bin.gz")}},
		{"random", []string{"-dataset", "random", "-topics", "20", "-subscribers", "50", "-out", filepath.Join(dir, "r.trace")}},
		{"custom seed", []string{"-dataset", "twitter", "-scale", "0.01", "-seed", "99", "-out", filepath.Join(dir, "tw2.trace")}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err != nil {
				t.Fatalf("run: %v", err)
			}
			out := tc.args[len(tc.args)-1]
			w, err := mcss.LoadTrace(out)
			if err != nil {
				t.Fatalf("LoadTrace: %v", err)
			}
			if err := w.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	bad := [][]string{
		{},                             // missing -out
		{"-out", "x", "-dataset", "?"}, // unknown dataset
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.trace")
	p2 := filepath.Join(dir, "b.trace")
	if err := run([]string{"-dataset", "twitter", "-scale", "0.01", "-seed", "1", "-out", p1}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", "twitter", "-scale", "0.01", "-seed", "2", "-out", p2}); err != nil {
		t.Fatal(err)
	}
	w1, err := mcss.LoadTrace(p1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := mcss.LoadTrace(p2)
	if err != nil {
		t.Fatal(err)
	}
	if w1.NumPairs() == w2.NumPairs() && w1.TotalEventRate() == w2.TotalEventRate() {
		t.Error("different seeds produced identical trace fingerprints")
	}
}

func TestRunGeneratesLoadableTimeline(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "day.timeline.gz")
	err := run([]string{
		"-dataset", "twitter", "-scale", "0.01",
		"-epochs", "6", "-epoch-minutes", "30", "-flash-epoch", "2",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tl, err := mcss.LoadTimeline(out)
	if err != nil {
		t.Fatalf("LoadTimeline: %v", err)
	}
	if tl.NumEpochs() != 6 || tl.EpochMinutes != 30 {
		t.Errorf("timeline %d epochs × %d min, want 6 × 30", tl.NumEpochs(), tl.EpochMinutes)
	}
	if err := tl.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
