package main

import (
	"os"
	"testing"

	"github.com/pubsub-systems/mcss/internal/stats"
)

func TestRunSingleFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	outdir := t.TempDir()
	// A cheap subset covering each driver family; "all" is exercised by
	// cmd usage and CI-style full runs.
	figs := []string{"4", "8", "ablation", "diurnal"}
	for _, fig := range figs {
		t.Run(fig, func(t *testing.T) {
			if err := run([]string{"-fig", fig, "-scale", "0.05", "-outdir", outdir}); err != nil {
				t.Fatalf("run(-fig %s): %v", fig, err)
			}
		})
	}
	// CSVs were written.
	entries, err := os.ReadDir(outdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no CSVs written")
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", e.Name())
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99z"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestDecimate(t *testing.T) {
	pts := make([]stats.Point, 100)
	for i := range pts {
		pts[i] = stats.Point{X: float64(i), Y: float64(i)}
	}
	out := decimate(pts, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d, want 10", len(out))
	}
	if out[0].X != 0 || out[9].X != 99 {
		t.Errorf("endpoints = %v..%v, want 0..99", out[0].X, out[9].X)
	}
	// Short inputs pass through.
	short := decimate(pts[:5], 10)
	if len(short) != 5 {
		t.Errorf("short len = %d, want 5", len(short))
	}
}
