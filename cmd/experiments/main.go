// Command experiments regenerates the figures of the MCSS paper's
// evaluation (§IV and Appendix D) on the synthetic traces and prints them
// as tables; -outdir additionally writes CSV files per figure.
//
// Examples:
//
//	experiments -fig 3a                 # one panel of Fig. 3
//	experiments -fig all -scale 0.5     # everything, half-scale
//	experiments -fig summary            # paper-vs-measured savings table
//	experiments -fig all -outdir results/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/pubsub-systems/mcss/internal/cli"
	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/obs"
	"github.com/pubsub-systems/mcss/internal/obs/slogx"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/stats"
)

func main() {
	os.Exit(cli.ExitCode("experiments", run(os.Args[1:]), os.Stderr))
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure: 2a 2b 3a 3b 4 5 6 7 8 9 10 11 12, all, summary, hetero, diurnal, spot, latency, ablation, scaling, or scale")
		scale    = fs.Float64("scale", 1.0, "workload scale factor")
		outdir   = fs.String("outdir", "", "write CSV files (and -fig scale's BENCH_5.json) to this directory")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		progress = fs.Bool("progress", false, "stream per-stage solver progress to stderr")
		sizes    = fs.String("sizes", "", "comma-separated pair counts for -fig scale (default: the full 10k→1.28M sweep)")
		churn    = fs.Bool("churn", false, "with -fig scale: run the incremental-vs-full churn sweep (BENCH_6.json) instead of the stage-2 sweep")
		short    = fs.Bool("short", false, "CI smoke mode: cap the workload scale of figures that support it (currently latency)")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics on this address for the life of the run")
		metricsDump = fs.String("metrics-dump", "", "write the final metrics registry as JSON (relative paths land in -outdir, next to the BENCH output)")
	)
	logLevel := slogx.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Setup(os.Stderr, *logLevel)
	ctx, stop := cli.Context(*timeout)
	defer stop()

	m := obs.NewMetrics(nil)
	if *metricsAddr != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metricsAddr, m.Registry)
		if err != nil {
			return err
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "serving metrics on %s\n", addr)
	}
	watchers := []core.Observer{m.Observer()}
	if *progress {
		watchers = append(watchers, report.NewProgress(os.Stderr))
	}
	ctx = core.ContextWithObserver(ctx, obs.Tee(watchers...))
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	scaleSizes, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"2a", "2b", "3a", "3b", "4", "5", "6", "7", "8", "9", "10", "11", "12", "summary", "hetero", "diurnal"}
	}
	for _, f := range figs {
		start := time.Now()
		if err := runFig(ctx, strings.TrimSpace(f), *scale, *outdir, scaleSizes, *churn, *short); err != nil {
			// Wrapping preserves the figure prefix while cli.ExitCode's
			// errors.Is still recognizes a cancellation/deadline inside.
			return fmt.Errorf("fig %s: %w", f, err)
		}
		fmt.Fprintf(os.Stderr, "[fig %s done in %s]\n\n", f, time.Since(start).Round(time.Millisecond))
	}
	return dumpMetrics(m, *metricsDump, *outdir)
}

// dumpMetrics writes the registry as JSON so a perf run carries its
// telemetry; a relative path lands in outdir, next to the BENCH output.
// Empty path is a no-op.
func dumpMetrics(m *obs.Metrics, path, outdir string) error {
	if path == "" {
		return nil
	}
	if outdir != "" && !filepath.IsAbs(path) {
		path = filepath.Join(outdir, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Registry.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSizes parses the -sizes flag into pair counts; empty means the
// full default sweep.
func parseSizes(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func runFig(ctx context.Context, fig string, scale float64, outdir string, sizes []int64, churn, short bool) error {
	switch fig {
	case "2a":
		return ladder(ctx, experiments.Spotify, pricing.C3Large, scale, outdir, "fig2a")
	case "2b":
		return ladder(ctx, experiments.Spotify, pricing.C3XLarge, scale, outdir, "fig2b")
	case "3a":
		return ladder(ctx, experiments.Twitter, pricing.C3Large, scale, outdir, "fig3a")
	case "3b":
		return ladder(ctx, experiments.Twitter, pricing.C3XLarge, scale, outdir, "fig3b")
	case "4":
		return stage1Runtime(ctx, experiments.Spotify, scale, outdir, "fig4")
	case "5":
		return stage1Runtime(ctx, experiments.Twitter, scale, outdir, "fig5")
	case "6":
		return stage2Runtime(ctx, experiments.Spotify, scale, outdir, "fig6")
	case "7":
		return stage2Runtime(ctx, experiments.Twitter, scale, outdir, "fig7")
	case "8", "9", "10", "11", "12":
		return traceAnalysis(ctx, fig, scale, outdir)
	case "summary":
		return summary(ctx, scale, outdir)
	case "hetero":
		return hetero(ctx, scale, outdir)
	case "diurnal":
		return diurnal(ctx, scale, outdir)
	case "spot":
		return spotChaos(ctx, scale, outdir)
	case "latency":
		return latency(ctx, scale, outdir, short)
	case "ablation":
		return ablation(ctx, scale, outdir)
	case "scaling":
		return scaling(ctx, outdir)
	case "scale":
		if churn {
			return churnSweep(ctx, outdir, sizes)
		}
		return scaleSweep(ctx, outdir, sizes)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func writeCSV(t *report.Table, outdir, name string) error {
	if outdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(outdir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func ladder(ctx context.Context, d experiments.Dataset, inst pricing.InstanceType, scale float64, outdir, name string) error {
	res, err := experiments.RunLadder(ctx, d, inst, scale)
	if err != nil {
		return err
	}
	t := res.Table()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, tau := range experiments.Taus {
		fmt.Printf("τ=%-5d full-vs-naive saving %.1f%%, over lower bound %.1f%%\n",
			tau, res.Savings(tau)*100, res.OverLowerBound(tau)*100)
	}
	return writeCSV(t, outdir, name)
}

func stage1Runtime(ctx context.Context, d experiments.Dataset, scale float64, outdir, name string) error {
	rows, err := experiments.RunStage1Runtime(ctx, d, scale)
	if err != nil {
		return err
	}
	var taus []int64
	var g, r []time.Duration
	for _, row := range rows {
		taus = append(taus, row.Tau)
		g = append(g, row.Greedy)
		r = append(r, row.Random)
	}
	t := experiments.RuntimeTable(
		fmt.Sprintf("Stage 1 runtime for %s traces (paper Fig. 4/5)", d),
		"GSP", "RSP", taus, g, r)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(t, outdir, name)
}

func stage2Runtime(ctx context.Context, d experiments.Dataset, scale float64, outdir, name string) error {
	rows, err := experiments.RunStage2Runtime(ctx, d, pricing.C3Large, scale)
	if err != nil {
		return err
	}
	var taus []int64
	var c, f []time.Duration
	for _, row := range rows {
		taus = append(taus, row.Tau)
		c = append(c, row.Custom)
		f = append(f, row.FirstFit)
	}
	t := experiments.RuntimeTable(
		fmt.Sprintf("Stage 2 runtime for %s for c3.large (paper Fig. 6/7)", d),
		"CustomBinPacking", "FFBinPacking", taus, c, f)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(t, outdir, name)
}

func traceAnalysis(ctx context.Context, fig string, scale float64, outdir string) error {
	ta, err := experiments.RunTraceAnalysis(ctx, scale)
	if err != nil {
		return err
	}
	var series []report.Series
	var title string
	switch fig {
	case "8":
		title = "Fig 8: CCDF of #Followers and #Followings"
		series = []report.Series{
			{Name: "followers", Points: ta.FollowersCCDF},
			{Name: "followings", Points: ta.FollowingsCCDF},
		}
	case "9":
		title = "Fig 9: CCDF of event rate"
		series = []report.Series{{Name: "event-rate", Points: ta.EventRateCCDF}}
	case "10":
		title = "Fig 10: mean event rate vs #followers"
		series = []report.Series{{Name: "mean-rate", Points: ta.RateVsFollowers}}
	case "11":
		title = "Fig 11: CCDF of subscription cardinality"
		series = []report.Series{{Name: "sc", Points: ta.SCCCDF}}
	case "12":
		title = "Fig 12: mean SC vs #followings"
		series = []report.Series{{Name: "mean-sc", Points: ta.SCVsFollowings}}
	}
	// CCDFs have thousands of points; print a decimated view, write the
	// full series to CSV.
	decimated := make([]report.Series, len(series))
	for i, s := range series {
		decimated[i] = report.Series{Name: s.Name, Points: decimate(s.Points, 25)}
	}
	if err := report.RenderSeries(os.Stdout, title+" (decimated)", decimated...); err != nil {
		return err
	}
	if outdir != "" {
		f, err := os.Create(filepath.Join(outdir, "fig"+fig+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return report.SeriesCSV(f, series...)
	}
	return nil
}

func decimate(pts []stats.Point, max int) []stats.Point {
	if len(pts) <= max {
		return pts
	}
	out := make([]stats.Point, 0, max)
	step := float64(len(pts)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, pts[int(float64(i)*step)])
	}
	return out
}

func ablation(ctx context.Context, scale float64, outdir string) error {
	rows, err := experiments.RunStage2Ablation(ctx, experiments.Twitter, pricing.C3Large, 100, scale)
	if err != nil {
		return err
	}
	t := experiments.AblationTable(experiments.Twitter, 100, rows)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(t, outdir, "ablation")
}

func scaling(ctx context.Context, outdir string) error {
	rows, err := experiments.RunScaling(ctx, experiments.Twitter, 100, nil)
	if err != nil {
		return err
	}
	t := experiments.ScalingTable(experiments.Twitter, 100, rows)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(t, outdir, "scaling")
}

// scaleSweep runs the stage-2 scale sweep and writes the machine-readable
// BENCH_5.json next to the CSVs (or into the working directory when no
// -outdir is given) — the perf trajectory future changes regress against.
func scaleSweep(ctx context.Context, outdir string, sizes []int64) error {
	res, err := experiments.RunScale(ctx, sizes)
	if err != nil {
		return err
	}
	t := res.Table()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, fleet := range []string{"homogeneous", "hetero"} {
		for _, packer := range []string{"ffbp", "cbp"} {
			if r := res.MaxDoublingRatio(fleet, packer); r > 0 {
				fmt.Printf("%s/%s worst ratio per doubling %.2f× (2 = linear), growth exponent %.2f (1 = linear, 2 = quadratic)\n",
					fleet, packer, r, res.GrowthExponent(fleet, packer))
			}
		}
	}
	dir := outdir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_5.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return writeCSV(t, outdir, "scale")
}

// churnSweep runs the incremental-vs-full churn sweep at the scale sweep's
// sizes and writes the machine-readable BENCH_6.json — the incremental
// path's perf contract (≥10× at ≤5% churn on 1M+ pairs, regret ≤ 2%).
func churnSweep(ctx context.Context, outdir string, sizes []int64) error {
	res, err := experiments.RunChurn(ctx, sizes, nil)
	if err != nil {
		return err
	}
	t := res.Table()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("worst speedup at ≤5%% churn %.1f×, worst regret vs full re-solve %+.2f%%, all allocations verified: %v\n",
		res.Summary.MinSpeedupLowChurn, res.Summary.MaxRegretVsFull*100, res.Summary.AllVerified)
	dir := outdir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_6.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return writeCSV(t, outdir, "churn")
}

func hetero(ctx context.Context, scale float64, outdir string) error {
	for _, d := range []experiments.Dataset{experiments.Spotify, experiments.Twitter} {
		res, err := experiments.RunHetero(ctx, d, scale)
		if err != nil {
			return err
		}
		t := res.Table()
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		for _, tau := range experiments.Taus {
			homo, ok := res.BestHomogeneous(tau)
			mixed, ok2 := res.Mixed(tau)
			if !ok || !ok2 {
				continue
			}
			fmt.Printf("τ=%-5d mixed %.2f$ / %d VMs vs best homogeneous (%s) %.2f$ / %d VMs — saves %.3f%%\n",
				tau, mixed.CostUSD, mixed.VMs, homo.Strategy, homo.CostUSD, homo.VMs,
				res.Savings(tau)*100)
		}
		if err := writeCSV(t, outdir, "hetero-"+d.String()); err != nil {
			return err
		}
	}
	return nil
}

func diurnal(ctx context.Context, scale float64, outdir string) error {
	res, err := experiments.RunDiurnal(ctx, experiments.Twitter, scale)
	if err != nil {
		return err
	}
	et := res.EpochTable()
	if err := et.Render(os.Stdout); err != nil {
		return err
	}
	st := res.SummaryTable()
	if err := st.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("hysteresis saves %.1f%% vs static peak and costs %.1f%% more than the per-epoch oracle\n",
		res.SavingsVsStatic()*100, res.OverOracle()*100)
	if err := writeCSV(et, outdir, "diurnal-epochs"); err != nil {
		return err
	}
	return writeCSV(st, outdir, "diurnal-summary")
}

// spotChaos runs the spot-market chaos experiment and writes the
// machine-readable BENCH_8.json next to the CSVs (or into the working
// directory when no -outdir is given) — the realized-savings contract
// (≥20% vs all-on-demand with zero post-repair Verify failures).
func spotChaos(ctx context.Context, scale float64, outdir string) error {
	res, err := experiments.RunSpot(ctx, experiments.Twitter, scale)
	if err != nil {
		return err
	}
	et := res.EpochTable()
	if err := et.Render(os.Stdout); err != nil {
		return err
	}
	st := res.SummaryTable()
	if err := st.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("spot portfolio saves %.1f%% vs all-on-demand net of %d reclamations (%d groups, %d pair-min lost); all epochs verified: %v\n",
		res.SavingsVsOnDemand()*100, res.ReclaimedVMs(), res.ReclaimGroups(),
		res.LostPairMinutes(), res.VerifyFailures == 0)
	if res.VerifyFailures > 0 {
		return fmt.Errorf("%d epochs failed post-repair verification (first: %s)",
			res.VerifyFailures, res.VerifyErr)
	}
	dir := outdir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_8.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Bench().WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	if err := writeCSV(et, outdir, "spot-epochs"); err != nil {
		return err
	}
	return writeCSV(st, outdir, "spot-summary")
}

// latency runs the multi-region cost-vs-latency-SLO frontier and writes
// the machine-readable BENCH_9.json next to the CSVs (or into the working
// directory when no -outdir is given) — the acceptance bar is a monotone
// non-increasing frontier and an exact degenerate single-region match
// against the paper-faithful strategies.
func latency(ctx context.Context, scale float64, outdir string, short bool) error {
	res, err := experiments.RunLatency(ctx, experiments.Twitter, scale, short)
	if err != nil {
		return err
	}
	t := res.Table()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	b := res.Bench()
	fmt.Printf("frontier monotone: %v; tight/loose cost ratio %.3f; degenerate single-region exact: %v\n",
		b.Summary.Monotone, b.Summary.TightLooseRatio, b.Summary.DegenerateExact)
	if !res.DegenerateExact {
		return fmt.Errorf("degenerate single-region run diverged from gsp+cbp: %s", res.DegenerateDiff)
	}
	if !res.Monotone() {
		return fmt.Errorf("frontier not monotone: loosening the SLO ceiling increased total cost")
	}
	dir := outdir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_9.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := b.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return writeCSV(t, outdir, "latency")
}

func summary(ctx context.Context, scale float64, outdir string) error {
	s, err := experiments.RunSummary(ctx, scale)
	if err != nil {
		return err
	}
	t := s.Table()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, d := range []experiments.Dataset{experiments.Spotify, experiments.Twitter} {
		fmt.Printf("max full saving on %s: measured %.1f%% (paper: up to %.0f%%)\n",
			d, s.MaxFullSavings[d]*100, experiments.PaperFullSavings(d)*100)
	}
	return writeCSV(t, outdir, "summary")
}
