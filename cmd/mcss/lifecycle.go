package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/cli"
	"github.com/pubsub-systems/mcss/internal/obs/slogx"
	"github.com/pubsub-systems/mcss/internal/report"
)

// loadState reads the persisted cluster state (a zero-step snapshot plan
// written by a previous apply). A missing file — or an empty path — is the
// never-deployed cluster, so the very first plan bootstraps from nothing.
func loadState(path string) (*mcss.ClusterState, error) {
	if path == "" {
		return mcss.EmptyClusterState(), nil
	}
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return mcss.EmptyClusterState(), nil
	}
	p, err := mcss.LoadPlan(path)
	if err != nil {
		return nil, fmt.Errorf("state %s: %w", path, err)
	}
	return p.Target, nil
}

// saveState persists the cluster state as a snapshot plan.
func saveState(path string, cfg mcss.SolverConfig, s *mcss.ClusterState) error {
	snap, err := mcss.SnapshotPlan(cfg, s)
	if err != nil {
		return err
	}
	return mcss.SavePlan(snap, path)
}

// configFromPlan rebuilds the solver configuration a plan's own parameters
// describe — what apply uses, so a plan file is self-contained.
func configFromPlan(p *mcss.DeployPlan) mcss.SolverConfig {
	cfg := mcss.DefaultConfig(p.Tau, p.Model)
	cfg.MessageBytes = p.MessageBytes
	cfg.Fleet = p.Fleet
	return cfg
}

// printPlan renders the reviewable summary of a plan: the diff, the
// forecast, and (up to showSteps) the executable steps.
func printPlan(p *mcss.DeployPlan, showSteps int) error {
	d := p.Diff
	t := report.NewTable("plan", "metric", "value")
	t.AddRow("base fingerprint", p.BaseFingerprint)
	t.AddRow("target fingerprint", p.TargetFingerprint())
	t.AddRow("new topics / subscribers", fmt.Sprintf("%d / %d", len(d.Delta.NewTopics), d.Delta.NewSubscribers))
	t.AddRow("rate changes", len(d.Delta.RateChanges))
	t.AddRow("subscribe / unsubscribe", fmt.Sprintf("%d / %d", len(d.Delta.Subscribe), len(d.Delta.Unsubscribe)))
	t.AddRow("VMs", fmt.Sprintf("%d → %d", d.Stats.VMsBefore, d.Stats.VMsAfter))
	t.AddRow("pairs moved / kept", fmt.Sprintf("%d / %d", d.Stats.PairsMoved, d.Stats.PairsKept))
	t.AddRow("steps", len(p.Steps))
	t.AddRow("cost", fmt.Sprintf("%v → %v (Δ %v)", p.CostBefore, p.CostAfter, p.CostDelta()))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for i, s := range p.Steps {
		if i >= showSteps {
			fmt.Printf("  … %d more steps\n", len(p.Steps)-showSteps)
			break
		}
		fmt.Printf("  step %3d: %v\n", i, s)
	}
	return nil
}

// runPlan computes a plan from the persisted state to the flag-described
// spec and writes it to -o.
func runPlan(args []string) error {
	fs := flag.NewFlagSet("mcss plan", flag.ContinueOnError)
	sf := registerSolverFlags(fs)
	var (
		statePath = fs.String("state", "", "cluster state file (missing or empty = plan from the empty cluster)")
		out       = fs.String("o", "plan.json", "output plan file (.gz compresses)")
		showSteps = fs.Int("show-steps", 10, "print the first N plan steps")
		timeout   = fs.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, stopMetrics, err := sf.instrument()
	if err != nil {
		return err
	}
	defer stopMetrics()
	w, p, _, _, err := sf.build(m)
	if err != nil {
		return err
	}
	current, err := loadState(*statePath)
	if err != nil {
		return err
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()

	plan, err := p.Plan(ctx, mcss.DeploySpec{Workload: w}, current)
	if err != nil {
		return err
	}
	if err := printPlan(plan, *showSteps); err != nil {
		return err
	}
	if err := mcss.SavePlan(plan, *out); err != nil {
		return err
	}
	fmt.Printf("plan written to %s — review it, then run: mcss apply", *out)
	if *statePath != "" {
		fmt.Printf(" -state %s", *statePath)
	}
	fmt.Printf(" %s\n", *out)
	return nil
}

// runDiff prints what a reconfiguration would change without writing a
// plan file; with a positional argument it prints an already-saved plan.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("mcss diff", flag.ContinueOnError)
	sf := registerSolverFlags(fs)
	var (
		statePath = fs.String("state", "", "cluster state file (missing or empty = diff against the empty cluster)")
		showSteps = fs.Int("show-steps", 10, "print the first N plan steps")
		timeout   = fs.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		// Review mode: print a saved plan.
		plan, err := mcss.LoadPlan(fs.Arg(0))
		if err != nil {
			return err
		}
		return printPlan(plan, *showSteps)
	}
	m, stopMetrics, err := sf.instrument()
	if err != nil {
		return err
	}
	defer stopMetrics()
	w, p, _, _, err := sf.build(m)
	if err != nil {
		return err
	}
	current, err := loadState(*statePath)
	if err != nil {
		return err
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	plan, err := p.Plan(ctx, mcss.DeploySpec{Workload: w}, current)
	if err != nil {
		return err
	}
	return printPlan(plan, *showSteps)
}

// runApply loads a plan, verifies it against the persisted state, executes
// it, and persists the advanced state.
func runApply(args []string) error {
	fs := flag.NewFlagSet("mcss apply", flag.ContinueOnError)
	var (
		statePath = fs.String("state", "", "cluster state file to verify against and update; omitting it checks the plan against the empty cluster (bootstrap plans only) and persists nothing")
		dryRun    = fs.Bool("dry-run", false, "validate and replay the plan without adopting or persisting anything")
		quiet     = fs.Bool("quiet", false, "suppress per-step progress")
		timeout   = fs.Duration("timeout", 0, "abort the apply after this duration (0 = none)")
	)
	logLevel := slogx.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Setup(os.Stderr, *logLevel)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mcss apply [-state cluster.json] [-dry-run] plan.json")
	}
	plan, err := mcss.LoadPlan(fs.Arg(0))
	if err != nil {
		return err
	}
	current, err := loadState(*statePath)
	if err != nil {
		return err
	}
	cfg := configFromPlan(plan)
	prov, err := mcss.RestoreProvisioner(current, cfg)
	if err != nil {
		return err
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()

	opts := []mcss.ApplyOption{}
	if *dryRun {
		opts = append(opts, mcss.ApplyDryRun())
	}
	if !*quiet {
		opts = append(opts, mcss.WithStepObserver(mcss.DeployObserverFunc(
			func(i, total int, s mcss.DeployStep) error {
				fmt.Printf("  [%d/%d] %v\n", i+1, total, s)
				return nil
			})))
	}
	rep, err := mcss.Apply(ctx, plan, prov, opts...)
	if err != nil {
		if errors.Is(err, mcss.ErrStalePlan) {
			if *statePath == "" {
				return fmt.Errorf("%w\nno -state file was given, so the plan was checked against the empty cluster; "+
					"pass -state <file> to apply against persisted state", err)
			}
			return fmt.Errorf("%w\nthe cluster drifted since this plan was computed; run `mcss plan` again", err)
		}
		return err
	}
	mode := "applied"
	if rep.DryRun {
		mode = "dry run ok"
	}
	fmt.Printf("%s: %d steps, fleet %d → %d VMs, %d pairs moved, cost %v → %v\n",
		mode, rep.StepsApplied, rep.Stats.VMsBefore, rep.Stats.VMsAfter,
		rep.Stats.PairsMoved, rep.Stats.CostBefore, rep.Stats.CostAfter)
	if rep.DryRun || *statePath == "" {
		return nil
	}
	if err := saveState(*statePath, cfg, mcss.ClusterStateOf(prov)); err != nil {
		return err
	}
	fmt.Printf("state written to %s (fingerprint %s)\n", *statePath, plan.TargetFingerprint())
	return nil
}
