package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	mcss "github.com/pubsub-systems/mcss"
)

// TestPlanApplyRoundTrip is the lifecycle acceptance test: `mcss plan -o
// plan.json` followed by `mcss apply plan.json` must land the cluster
// exactly on the plan's forecast — same cost, same fingerprint, same
// migration stats — and applying the same plan again after the state
// drifted must fail with ErrStalePlan.
func TestPlanApplyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "cluster.json")
	planPath := filepath.Join(dir, "plan.json")
	trace := filepath.Join(dir, "trace.gz")

	w, err := mcss.GenerateTwitter(mcss.DefaultTwitterTrace().Scale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := mcss.SaveTrace(w, trace); err != nil {
		t.Fatal(err)
	}
	common := []string{"-trace", trace, "-tau", "100"}

	// Plan from the empty cluster, then apply.
	if err := run(append([]string{"plan", "-state", state, "-o", planPath}, common...)); err != nil {
		t.Fatal(err)
	}
	plan, err := mcss.LoadPlan(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"apply", "-quiet", "-state", state, planPath}); err != nil {
		t.Fatal(err)
	}

	// The persisted state equals the plan's forecast: fingerprint, cost,
	// and fleet size all match.
	cur, err := loadState(state)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cur.Fingerprint(), plan.TargetFingerprint(); got != want {
		t.Fatalf("applied state fingerprint %s != plan target %s", got, want)
	}
	if got, want := cur.Allocation.Cost(plan.Model), plan.CostAfter; got != want {
		t.Fatalf("applied cost %v != plan forecast %v", got, want)
	}
	if got, want := cur.Allocation.NumVMs(), plan.Diff.Stats.VMsAfter; got != want {
		t.Fatalf("applied fleet %d VMs != plan forecast %d", got, want)
	}
	realized := mcss.StepsBetween(mcss.EmptyClusterState().Allocation, cur.Allocation)
	if len(realized) != len(plan.Steps) {
		t.Fatalf("realized state needs %d steps from empty, plan had %d", len(realized), len(plan.Steps))
	}

	// Dry-run of a fresh no-drift plan applies cleanly and changes nothing.
	plan2Path := filepath.Join(dir, "plan2.json")
	if err := run(append([]string{"plan", "-state", state, "-o", plan2Path}, common...)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"apply", "-quiet", "-dry-run", "-state", state, plan2Path}); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("dry run rewrote the state file")
	}

	// Drift the workload (rate spike) and reconcile onto it.
	drifted, err := mcss.ApplyDelta(w, mcss.Delta{RateChanges: map[mcss.TopicID]int64{0: w.Rate(0) * 3}})
	if err != nil {
		t.Fatal(err)
	}
	driftTrace := filepath.Join(dir, "drift.gz")
	if err := mcss.SaveTrace(drifted, driftTrace); err != nil {
		t.Fatal(err)
	}
	plan3 := filepath.Join(dir, "plan3.json")
	if err := run([]string{"plan", "-trace", driftTrace, "-tau", "100", "-state", state, "-o", plan3}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"apply", "-quiet", "-state", state, plan3}); err != nil {
		t.Fatal(err)
	}

	// The pre-drift plan no longer matches the cluster: ErrStalePlan.
	err = run([]string{"apply", "-quiet", "-state", state, plan2Path})
	if !errors.Is(err, mcss.ErrStalePlan) {
		t.Fatalf("apply after drift returned %v, want ErrStalePlan", err)
	}
}

// TestDiffSubcommand covers both diff modes: computing a fresh diff and
// reviewing a saved plan.
func TestDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	common := []string{"-dataset", "spotify", "-scale", "0.005", "-tau", "50"}
	if err := run(append([]string{"diff"}, common...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"plan", "-o", planPath}, common...)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"diff", planPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"diff", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("diff of a missing plan file succeeded")
	}
}

// TestApplyUsageErrors: apply without a plan argument fails.
func TestApplyUsageErrors(t *testing.T) {
	if err := run([]string{"apply"}); err == nil {
		t.Fatal("apply without a plan accepted")
	}
	if err := run([]string{"apply", "a.json", "b.json"}); err == nil {
		t.Fatal("apply with two plans accepted")
	}
}
