package main

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	mcss "github.com/pubsub-systems/mcss"
)

func TestParseOpts(t *testing.T) {
	tests := []struct {
		in      string
		want    mcss.OptFlags
		wantErr bool
	}{
		{"all", mcss.OptAll, false},
		{"none", 0, false},
		{"", 0, false},
		{"expensive", mcss.OptExpensiveTopicFirst, false},
		{"mostfree", mcss.OptMostFreeVM, false},
		{"cost", mcss.OptCostBased, false},
		{"expensive,cost", mcss.OptExpensiveTopicFirst | mcss.OptCostBased, false},
		{"Expensive, MostFree", mcss.OptExpensiveTopicFirst | mcss.OptMostFreeVM, false},
		{"bogus", 0, true},
		{"expensive,bogus", 0, true},
	}
	for _, tc := range tests {
		got, err := parseOpts(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseOpts(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parseOpts(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLoadWorkloadDispatch(t *testing.T) {
	if _, err := loadWorkload("", "", 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadWorkload("", "mars", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	w, err := loadWorkload("", "spotify", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumSubscribers() == 0 {
		t.Error("empty spotify workload")
	}

	// Round-trip through a trace file.
	path := filepath.Join(t.TempDir(), "t.gz")
	if err := mcss.SaveTrace(w, path); err != nil {
		t.Fatal(err)
	}
	back, err := loadWorkload(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPairs() != w.NumPairs() {
		t.Error("trace round trip changed pairs")
	}
}

func TestRunEndToEnd(t *testing.T) {
	err := run([]string{
		"-dataset", "twitter", "-scale", "0.01", "-tau", "50",
		"-stage1", "gsp", "-stage2", "cbp", "-opts", "all", "-verify", "-progress",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// An already-expired -timeout aborts the solve with DeadlineExceeded, the
// signal main maps to a clean partial-report exit.
func TestRunTimeoutAborts(t *testing.T) {
	err := run([]string{"-dataset", "twitter", "-scale", "0.01", "-tau", "50", "-timeout", "1ns"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// The -strategy flag dispatches the full-solve strategy registry: the
// registered "exact" solver runs (and verifies) on a tiny instance, and
// an unknown name is rejected up front.
func TestRunExactStrategyFlag(t *testing.T) {
	err := run([]string{"-dataset", "twitter", "-scale", "0.0001", "-tau", "5", "-strategy", "exact", "-verify"})
	if err != nil {
		t.Errorf("-strategy exact: %v", err)
	}
	if err := run([]string{"-dataset", "twitter", "-scale", "0.01", "-tau", "50", "-strategy", "bogus"}); err == nil {
		t.Error("unknown -strategy accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	bad := [][]string{
		{"-dataset", "twitter", "-scale", "0.01", "-instance", "m9.huge"},
		{"-dataset", "twitter", "-scale", "0.01", "-stage1", "xxx"},
		{"-dataset", "twitter", "-scale", "0.01", "-stage2", "xxx"},
		{"-dataset", "twitter", "-scale", "0.01", "-opts", "xxx"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
