// Command mcss solves the Minimum Cost Subscriber Satisfaction problem for
// a pub/sub workload and prints the resulting allocation and cost report.
//
// Beyond the one-shot solve, the command drives the declarative
// deployment lifecycle through three subcommands:
//
//	mcss plan  -dataset twitter -tau 100 -state cluster.json -o plan.json
//	mcss diff  -dataset twitter -tau 100 -state cluster.json
//	mcss apply -state cluster.json plan.json
//
// `plan` computes a serializable reconfiguration from the persisted
// cluster state (or the empty cluster) to the desired workload; `diff`
// prints what a plan would change without writing one; `apply` verifies a
// plan's fingerprint against the state, executes it, and persists the new
// state. Applying a plan after the state drifted fails with ErrStalePlan.
//
// The workload comes either from a trace file (-trace, written by
// cmd/tracegen or traceio.Save) or from a built-in synthetic dataset
// (-dataset twitter|spotify with -scale).
//
// Examples:
//
//	mcss -dataset twitter -scale 0.1 -tau 100 -instance c3.large
//	mcss -dataset twitter -scale 0.1 -tau 100 -fleet catalog
//	mcss -trace trace.gz -tau 10 -fleet c3.large,c3.2xlarge
//	mcss -dataset spotify -tau 1000 -capacity 250000000 -verify
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/cli"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/obs"
	"github.com/pubsub-systems/mcss/internal/obs/slogx"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
)

func main() {
	os.Exit(cli.ExitCode("mcss", run(os.Args[1:]), os.Stderr))
}

// run dispatches the lifecycle subcommands and falls back to the classic
// one-shot solve for plain flag invocations.
func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "plan":
			return runPlan(args[1:])
		case "apply":
			return runApply(args[1:])
		case "diff":
			return runDiff(args[1:])
		}
	}
	return runSolve(args)
}

// solverFlags is the flag block shared by the solve, plan, and diff
// paths: where the workload comes from and how to solve it.
type solverFlags struct {
	tracePath, dataset                *string
	scale                             *float64
	tau                               *int64
	instance, fleetSpec               *string
	capacity, msgBytes                *int64
	stage1, stage2, optSpec, strategy *string
	topologyPath                      *string
	sloMillis                         *int64
	progress                          *bool
	metricsAddr, logLevel             *string
}

func registerSolverFlags(fs *flag.FlagSet) *solverFlags {
	return &solverFlags{
		tracePath: fs.String("trace", "", "workload trace file (see cmd/tracegen)"),
		dataset:   fs.String("dataset", "", "synthetic dataset: twitter or spotify"),
		scale:     fs.Float64("scale", 0.1, "synthetic dataset scale factor"),
		tau:       fs.Int64("tau", 100, "satisfaction threshold τ (events/hour)"),
		instance:  fs.String("instance", "c3.large", "EC2 instance type"),
		fleetSpec: fs.String("fleet", "", "heterogeneous fleet: 'catalog' or comma list of instance types (empty = single -instance)"),
		capacity:  fs.Int64("capacity", 0, "per-VM capacity override in bytes/hour for -instance, scaled per-mbps across the fleet (0 = calibrated)"),
		msgBytes:  fs.Int64("message-bytes", 200, "notification size in bytes"),
		stage1:    fs.String("stage1", "gsp", "stage 1 algorithm: gsp, rsp, or topo-gsp"),
		stage2:    fs.String("stage2", "cbp", "stage 2 algorithm: cbp, ffbp, or topo"),
		optSpec:   fs.String("opts", "all", "CBP optimizations: all, none, or comma list of expensive,mostfree,cost"),
		strategy:  fs.String("strategy", "", "full-solve strategy replacing both stages (e.g. exact)"),
		topologyPath: fs.String("topology", "",
			"multi-region topology file (traceio mcss-topology format; empty = the paper's single region)"),
		sloMillis: fs.Int64("slo", 0,
			"latency SLO ceiling in ms on modeled delivery RTT (0 = none; used by -stage2 topo)"),
		progress: fs.Bool("progress", false, "stream per-stage solver progress to stderr"),
		metricsAddr: fs.String("metrics-addr", "",
			"serve Prometheus /metrics on this address for the life of the run"),
		logLevel: slogx.Register(fs),
	}
}

// instrument installs leveled logging and, when -metrics-addr is given,
// starts the background /metrics listener over a fresh registry. The
// returned Metrics is nil when metrics are off; stop drains the listener.
func (sf *solverFlags) instrument() (*obs.Metrics, func(), error) {
	slogx.Setup(os.Stderr, *sf.logLevel)
	if *sf.metricsAddr == "" {
		return nil, func() {}, nil
	}
	m := obs.NewMetrics(nil)
	addr, stop, err := obs.ServeMetrics(*sf.metricsAddr, m.Registry)
	if err != nil {
		return nil, nil, err
	}
	slog.Info("serving metrics", "addr", addr)
	return m, stop, nil
}

// build loads the workload and assembles the Planner (plus the resolved
// model and fleet) from the parsed flags; a non-nil m attaches the metrics
// observer alongside any -progress reporter.
func (sf *solverFlags) build(m *obs.Metrics) (*mcss.Workload, *mcss.Planner, mcss.Model, mcss.Fleet, error) {
	fail := func(err error) (*mcss.Workload, *mcss.Planner, mcss.Model, mcss.Fleet, error) {
		return nil, nil, mcss.Model{}, mcss.Fleet{}, err
	}
	w, err := loadWorkload(*sf.tracePath, *sf.dataset, *sf.scale)
	if err != nil {
		return fail(err)
	}
	it, ok := mcss.InstanceByName(*sf.instance)
	if !ok {
		return fail(fmt.Errorf("unknown instance type %q", *sf.instance))
	}
	var model mcss.Model
	if *sf.capacity > 0 {
		model = mcss.NewModel(it)
		model.CapacityOverrideBytesPerHour = *sf.capacity
	} else {
		model = experiments.ModelFor(it, w)
	}
	fleet, err := parseFleet(*sf.fleetSpec)
	if err != nil {
		return fail(err)
	}
	if !fleet.IsZero() {
		// Put every fleet type on the same bytes-per-mbps scale as the
		// (possibly calibrated) -instance capacity.
		fleet = fleet.WithBytesPerMbps(model.CapacityBytesPerHour() / it.LinkMbps)
	}
	optFlags, err := parseOpts(*sf.optSpec)
	if err != nil {
		return fail(err)
	}
	var topology *mcss.NetworkTopology
	if *sf.topologyPath != "" {
		topology, err = mcss.LoadTopology(*sf.topologyPath)
		if err != nil {
			return fail(fmt.Errorf("loading topology: %w", err))
		}
		if topology.NumRegions() > 1 {
			// Replicate the decision fleet into every region so the topo
			// packer has regional capacity to choose from.
			base := fleet
			if base.IsZero() {
				base = model.SingleFleet()
			}
			fleet, err = mcss.RegionalFleet(base, topology)
			if err != nil {
				return fail(err)
			}
		}
	}
	popts := []mcss.Option{
		mcss.WithTau(*sf.tau),
		mcss.WithModel(model),
		mcss.WithMessageBytes(*sf.msgBytes),
		mcss.WithStage1(strings.ToLower(*sf.stage1)),
		mcss.WithStage2(strings.ToLower(*sf.stage2)),
		mcss.WithOptFlags(optFlags),
	}
	if !fleet.IsZero() {
		popts = append(popts, mcss.WithFleet(fleet))
	}
	if topology != nil {
		popts = append(popts, mcss.WithTopology(topology), mcss.WithLatencySLO(*sf.sloMillis))
	}
	if *sf.strategy != "" {
		popts = append(popts, mcss.WithStrategy(*sf.strategy))
	}
	var watchers []mcss.Observer
	if *sf.progress {
		watchers = append(watchers, report.NewProgress(os.Stderr))
	}
	if m != nil {
		watchers = append(watchers, m.Observer())
	}
	if tee := obs.Tee(watchers...); tee != nil {
		popts = append(popts, mcss.WithObserver(tee))
	}
	p, err := mcss.NewPlanner(popts...)
	if err != nil {
		return fail(err)
	}
	return w, p, model, fleet, nil
}

func runSolve(args []string) error {
	fs := flag.NewFlagSet("mcss", flag.ContinueOnError)
	sf := registerSolverFlags(fs)
	var (
		verify  = fs.Bool("verify", false, "verify the allocation postconditions")
		showVMs = fs.Int("show-vms", 0, "print the first N VM placements")
		timeout = fs.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, stopMetrics, err := sf.instrument()
	if err != nil {
		return err
	}
	defer stopMetrics()
	w, p, model, fleet, err := sf.build(m)
	if err != nil {
		return err
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()

	fmt.Printf("workload: %d topics, %d subscribers, %d pairs\n",
		w.NumTopics(), w.NumSubscribers(), w.NumPairs())
	if fleet.IsZero() {
		fmt.Printf("config: τ=%d, %s (BC=%d bytes/h), stage1=%s stage2=%s opts=%v\n",
			*sf.tau, *sf.instance, model.CapacityBytesPerHour(), *sf.stage1, *sf.stage2, p.Config().Opts)
	} else {
		fmt.Printf("config: τ=%d, fleet %v, stage1=%s stage2=%s opts=%v\n",
			*sf.tau, fleet, *sf.stage1, *sf.stage2, p.Config().Opts)
	}

	res, err := p.Solve(ctx, w)
	if err != nil {
		return err
	}
	lb, err := p.LowerBound(ctx, w)
	if err != nil {
		return err
	}
	if m != nil {
		m.RecordAllocation(res.Allocation, model)
	}

	t := report.NewTable("solution",
		"metric", "value")
	t.AddRow("VMs", res.Allocation.NumVMs())
	t.AddRow("bandwidth (bytes/h)", res.Allocation.TotalBytesPerHour())
	t.AddRow("transfer over rental (GB)", float64(res.Allocation.TransferBytes(model))/float64(pricing.GB))
	t.AddRow("selected pairs", res.Selection.NumPairs())
	if !fleet.IsZero() {
		t.AddRow("fleet mix", report.FormatMix(res.Allocation.InstanceMix()))
	}
	t.AddRow("total cost", res.Cost(model).String())
	t.AddRow("lower bound cost", lb.Cost.String())
	t.AddRow("over lower bound", fmt.Sprintf("%.1f%%", 100*(float64(res.Cost(model))/float64(lb.Cost)-1)))
	t.AddRow("stage 1 time", res.Stage1Time.String())
	t.AddRow("stage 2 time", res.Stage2Time.String())
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if *verify {
		if err := p.Verify(w, res.Selection, res.Allocation); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Println("verification: OK (satisfaction, capacity, accounting)")
	}

	for i, vm := range res.Allocation.VMs {
		if i >= *showVMs {
			break
		}
		fmt.Printf("vm %d (%s): %d topics, %d pairs, %d bytes/h (%.0f%% full)\n",
			vm.ID, vm.Instance.Name, len(vm.Placements), vm.NumPairs(), vm.BytesPerHour(),
			100*float64(vm.BytesPerHour())/float64(vm.CapacityBytesPerHour))
	}
	return nil
}

// parseFleet resolves the -fleet flag: empty → zero fleet (single-instance
// mode), "catalog" → every known type, else a comma list of type names.
func parseFleet(spec string) (mcss.Fleet, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "":
		return mcss.Fleet{}, nil
	case "catalog", "all":
		return mcss.CatalogFleet(), nil
	}
	var types []mcss.InstanceType
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		it, ok := mcss.InstanceByName(name)
		if !ok {
			return mcss.Fleet{}, fmt.Errorf("unknown instance type %q in -fleet", name)
		}
		types = append(types, it)
	}
	return mcss.NewFleet(types...)
}

func loadWorkload(tracePath, dataset string, scale float64) (*mcss.Workload, error) {
	switch {
	case tracePath != "":
		return mcss.LoadTrace(tracePath)
	case strings.EqualFold(dataset, "twitter"):
		return mcss.GenerateTwitter(mcss.DefaultTwitterTrace().Scale(scale))
	case strings.EqualFold(dataset, "spotify"):
		return mcss.GenerateSpotify(mcss.DefaultSpotifyTrace().Scale(scale))
	case dataset == "":
		return nil, fmt.Errorf("need -trace or -dataset")
	default:
		return nil, fmt.Errorf("unknown dataset %q (want twitter or spotify)", dataset)
	}
}

func parseOpts(s string) (mcss.OptFlags, error) {
	switch strings.ToLower(s) {
	case "all":
		return mcss.OptAll, nil
	case "none", "":
		return 0, nil
	}
	var f mcss.OptFlags
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "expensive":
			f |= mcss.OptExpensiveTopicFirst
		case "mostfree":
			f |= mcss.OptMostFreeVM
		case "cost":
			f |= mcss.OptCostBased
		default:
			return 0, fmt.Errorf("unknown optimization %q", part)
		}
	}
	return f, nil
}
