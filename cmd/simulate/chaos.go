package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/deploy"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/traceio"
)

// The -chaos-apply sweep stress-tests the crash-safe apply path end to
// end: it solves the timeline into a chain of plans, then runs N seeded
// cases where each apply is journaled to disk and driven through a
// fault-injecting executor — transient step failures absorbed by the
// retry policy, plus (in most cases) a simulated process crash at a
// random step. A crashed case recovers the journal from disk exactly the
// way allocatord does at startup and resumes the plan with ResumeFrom.
//
// Every case must end at the plan's exact target fingerprint, pass the
// allocation oracle, and — the exactly-once contract — have executed each
// step's effect precisely once across the pre-crash and resumed applies.

// chaosApplyArgs parameterizes one -chaos-apply sweep.
type chaosApplyArgs struct {
	timelineArgs
	cases int
	seed  int64
}

// chaosStats aggregates sweep-wide counters for the summary line.
type chaosStats struct {
	crashes, resumed, retries, stepsApplied int
}

// chaosFailProb is the per-attempt transient fault rate. With
// chaosAttempts retry attempts per step, the odds of a spurious
// exhaustion are failProb^attempts ≈ 2.6e-6 — negligible over a sweep,
// and deterministic per seed if it ever fires.
const (
	chaosFailProb = 0.2
	chaosAttempts = 8
)

// runChaosApply executes the sweep and fails on the first case that
// breaks an invariant.
func runChaosApply(ctx context.Context, a chaosApplyArgs) error {
	tl, err := buildTimeline(a.timelineArgs)
	if err != nil {
		return err
	}
	env, err := tl.Envelope()
	if err != nil {
		return err
	}
	p, err := mcss.NewPlanner(
		mcss.WithTau(a.tau),
		mcss.WithModel(mcss.NewModel(mcss.C3Large)),
		mcss.WithFleet(experiments.FleetFor(env)),
	)
	if err != nil {
		return err
	}
	cfg := p.Config()

	// The plan chain: epoch e's plan moves the cluster from epoch e-1's
	// target (the empty cluster for e = 0) to a fresh full solve of
	// epoch e. Each case below applies one link of this chain.
	states := []*deploy.State{deploy.EmptyState()}
	plans := make([]*deploy.Plan, 0, tl.NumEpochs())
	totalSteps := 0
	for e := 0; e < tl.NumEpochs(); e++ {
		prov, err := p.Provision(ctx, tl.Epochs[e])
		if err != nil {
			return fmt.Errorf("chaos-apply: epoch %d solve: %w", e, err)
		}
		plan, err := deploy.NewPlan(cfg, states[e], deploy.NewState(tl.Epochs[e], prov.Allocation()))
		if err != nil {
			return fmt.Errorf("chaos-apply: epoch %d plan: %w", e, err)
		}
		plans = append(plans, plan)
		states = append(states, plan.Target)
		totalSteps += len(plan.Steps)
	}
	var eligible []int
	for e, pl := range plans {
		if len(pl.Steps) > 0 {
			eligible = append(eligible, e)
		}
	}
	if len(eligible) == 0 {
		return fmt.Errorf("chaos-apply: no epoch produced a plan with steps")
	}
	fmt.Printf("chaos-apply: %d epochs solved, %d plans with steps (%d steps total), running %d cases (seed %d)\n",
		tl.NumEpochs(), len(eligible), totalSteps, a.cases, a.seed)

	dir, err := os.MkdirTemp("", "mcss-chaos-apply-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(a.seed))
	var stats chaosStats
	for c := 0; c < a.cases; c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		e := eligible[rng.Intn(len(eligible))]
		plan := plans[e]
		// Crash step in [0, len(steps)]; the one-past-the-end draw runs
		// the case crash-free (transient faults only).
		k := rng.Intn(len(plan.Steps) + 1)
		path := filepath.Join(dir, fmt.Sprintf("case-%d.journal", c))
		caseSeed := a.seed + int64(c)*7919
		if err := runChaosCase(ctx, cfg, states[e], plan, e, path, k, caseSeed, &stats); err != nil {
			return fmt.Errorf("chaos-apply: case %d (epoch %d, crash step %d of %d): %w",
				c, e, k, len(plan.Steps), err)
		}
		stats.stepsApplied += len(plan.Steps)
	}
	fmt.Printf("chaos-apply: %d cases passed — %d crashes injected, %d resumed from journal, %d transient faults retried, %d step effects (all exactly-once)\n",
		a.cases, stats.crashes, stats.resumed, stats.retries, stats.stepsApplied)
	fmt.Println("chaos-apply: 0 verify failures, 0 duplicate step effects")
	return nil
}

// chaosExecutor builds the fault-injecting retry stack for one apply leg.
// The effect log is shared across a case's legs so duplicates spanning
// the crash are visible.
func chaosExecutor(effects *deploy.EffectLog, seed int64, crash bool, crashAt int, stats *chaosStats) deploy.Executor {
	inj := deploy.NewFaultInjector(deploy.NopExecutor, deploy.FaultConfig{
		FailProb:    chaosFailProb,
		Crash:       crash,
		CrashAtStep: crashAt,
		Seed:        seed,
		Effects:     effects,
	})
	return deploy.NewRetryExecutor(inj, deploy.RetryConfig{
		MaxAttempts: chaosAttempts,
		Seed:        seed,
		Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		OnRetry:     func(int, int, error) { stats.retries++ },
	})
}

// runChaosCase applies one plan under fault injection: snapshot the base
// state, apply with journal + faults, and — when the injected crash fires
// — recover from disk and resume, then check every post-condition.
func runChaosCase(ctx context.Context, cfg core.Config, base *deploy.State, plan *deploy.Plan,
	epoch int, path string, k int, seed int64, stats *chaosStats) error {
	prov, err := base.Provisioner(cfg)
	if err != nil {
		return fmt.Errorf("restoring base provisioner: %w", err)
	}
	j, err := traceio.OpenJournal(path, deploy.JournalOptions{SyncEvery: 1})
	if err != nil {
		return err
	}
	snap, err := deploy.Snapshot(cfg, base)
	if err != nil {
		j.Close()
		return err
	}
	if err := j.AppendSnapshot(int64(epoch)-1, snap); err != nil {
		j.Close()
		return err
	}

	effects := deploy.NewEffectLog()
	crash := k < len(plan.Steps)
	exec := chaosExecutor(effects, seed, crash, k, stats)
	_, aerr := deploy.Apply(ctx, plan, prov,
		deploy.WithJournal(j), deploy.WithExecutor(exec), deploy.WithApplyEpoch(epoch))

	if crash {
		if !errors.Is(aerr, deploy.ErrSimulatedCrash) {
			j.Close()
			return fmt.Errorf("expected simulated crash, apply returned %v", aerr)
		}
		stats.crashes++
		// The "process" is dead: only what the journal fsynced survives.
		// Recover from disk exactly as allocatord does at startup.
		j.Close()
		rec, rerr := traceio.RecoverJournal(path)
		if rerr != nil {
			return fmt.Errorf("recovery: %v", rerr)
		}
		if rec.InFlight == nil {
			return fmt.Errorf("recovery found no in-flight plan")
		}
		if rec.NextStep != k {
			return fmt.Errorf("recovery resumes at step %d, crash was before step %d", rec.NextStep, k)
		}
		if got, want := rec.State.Fingerprint(), plan.BaseFingerprint; got != want {
			return fmt.Errorf("recovered state %s, plan base %s", got, want)
		}
		prov, err = rec.State.Provisioner(cfg)
		if err != nil {
			return fmt.Errorf("restoring recovered provisioner: %w", err)
		}
		j, err = traceio.OpenJournal(path, deploy.JournalOptions{SyncEvery: 1})
		if err != nil {
			return err
		}
		// Same effect log, no crash this time: a duplicate effect across
		// the two legs is exactly what MaxPerStep would expose.
		resumeExec := chaosExecutor(effects, seed+1, false, 0, stats)
		_, aerr = deploy.Apply(ctx, rec.InFlight, prov,
			deploy.WithJournal(j), deploy.WithExecutor(resumeExec),
			deploy.WithApplyEpoch(epoch), deploy.ResumeFrom(rec.NextStep))
		stats.resumed++
	}
	if aerr != nil {
		j.Close()
		return fmt.Errorf("apply: %w", aerr)
	}
	if err := j.Close(); err != nil {
		return err
	}

	if got, want := deploy.StateOf(prov).Fingerprint(), plan.TargetFingerprint(); got != want {
		return fmt.Errorf("final state %s, plan target %s", got, want)
	}
	if err := core.VerifyServes(plan.Target.Workload, prov.Allocation(), cfg); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	for i := range plan.Steps {
		if n := effects.Executions(i); n != 1 {
			return fmt.Errorf("step %d effect executed %d times, want exactly once", i, n)
		}
	}
	// The journal on disk must tell the same story: a clean recovery
	// landing on the committed target with nothing in flight.
	final, err := traceio.RecoverJournal(path)
	if err != nil {
		return fmt.Errorf("final journal recovery: %v", err)
	}
	if final.InFlight != nil {
		return fmt.Errorf("final journal still has an in-flight plan")
	}
	if got, want := final.State.Fingerprint(), plan.TargetFingerprint(); got != want {
		return fmt.Errorf("final journal recovers %s, plan target %s", got, want)
	}
	return nil
}
