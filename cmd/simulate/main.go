// Command simulate solves MCSS for a workload, replays it through the
// discrete-event pub/sub simulator, and reports empirical satisfaction,
// traffic, and latency — optionally injecting a VM crash and repairing it
// with the online provisioner.
//
// Examples:
//
//	simulate -dataset spotify -scale 0.02 -tau 50 -hours 2
//	simulate -dataset twitter -scale 0.01 -tau 10 -hours 1 -poisson
//	simulate -trace t.gz -tau 100 -crash-vm 0 -crash-at 0.5 -repair
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/satisfy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "workload trace file")
		dataset   = fs.String("dataset", "", "synthetic dataset: twitter or spotify")
		scale     = fs.Float64("scale", 0.02, "synthetic dataset scale factor")
		tau       = fs.Int64("tau", 50, "satisfaction threshold τ (events/hour)")
		hours     = fs.Float64("hours", 2, "virtual simulation horizon")
		poisson   = fs.Bool("poisson", false, "Poisson arrivals instead of fixed spacing")
		seed      = fs.Int64("seed", 1, "Poisson seed")
		maxEvents = fs.Int64("max-events", 5_000_000, "event cap")
		crashVM   = fs.Int("crash-vm", -1, "VM to crash (-1 = none)")
		crashAt   = fs.Float64("crash-at", 0.5, "crash time in virtual hours")
		repair    = fs.Bool("repair", false, "repair the crash with the online provisioner and re-simulate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := loadWorkload(*tracePath, *dataset, *scale)
	if err != nil {
		return err
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	cfg := mcss.DefaultConfig(*tau, model)

	prov, err := mcss.NewProvisioner(w, cfg)
	if err != nil {
		return err
	}
	alloc := prov.Allocation()
	u := alloc.ComputeUtilization()
	fmt.Printf("workload: %d topics / %d subscribers / %d pairs\n",
		w.NumTopics(), w.NumSubscribers(), w.NumPairs())
	fmt.Printf("allocation: %d VMs, mean fill %.0f%%, incoming share %.1f%%, %d split topics\n",
		alloc.NumVMs(), u.MeanFill*100, u.IncomingShare*100, u.SplitTopics)

	simCfg := mcss.SimConfig{
		DurationHours: *hours,
		MessageBytes:  cfg.MessageBytes,
		MaxEvents:     *maxEvents,
		Poisson:       *poisson,
		PoissonSeed:   *seed,
	}
	if *crashVM >= 0 {
		simCfg.Crashes = []mcss.Crash{{VM: *crashVM, AtHour: *crashAt}}
	}

	start := time.Now()
	sim, err := mcss.Simulate(w, alloc, simCfg)
	if err != nil {
		return err
	}
	printSim(w, sim, *tau)
	fmt.Printf("(simulated in %s)\n", time.Since(start).Round(time.Millisecond))

	if *crashVM >= 0 && *repair {
		stats, err := prov.RepairCrash(*crashVM)
		if err != nil {
			return err
		}
		fmt.Printf("\nrepair: re-homed %d pairs onto %d-VM fleet (%d new)\n",
			stats.PairsRehomed, stats.VMsAfter, stats.NewVMs)
		simCfg.Crashes = nil
		sim, err = mcss.Simulate(w, prov.Allocation(), simCfg)
		if err != nil {
			return err
		}
		printSim(w, sim, *tau)
	}
	return nil
}

func printSim(w *mcss.Workload, sim *mcss.SimResult, tau int64) {
	m := satisfy.Measure(w, perHour(sim), tau)
	fmt.Printf("simulated %v h: %d publications, %d deliveries, %d dropped\n",
		sim.DurationHours, sim.Events, sim.Deliveries, sim.DroppedDeliveries)
	fmt.Printf("satisfaction: %d/%d subscribers (mean ratio %.3f, min %.3f)\n",
		m.Satisfied, m.Total, m.MeanRatio, m.MinRatio)
	if sim.MaxLatencyNanos > 0 {
		fmt.Printf("latency: mean %s, max %s\n",
			time.Duration(sim.MeanLatencyNanos()), time.Duration(sim.MaxLatencyNanos))
	}
}

// perHour converts cumulative delivered counts into events/hour for the
// satisfaction metrics (floor effects make this slightly conservative).
func perHour(sim *mcss.SimResult) []int64 {
	out := make([]int64, len(sim.Delivered))
	for v, d := range sim.Delivered {
		out[v] = int64(float64(d) / sim.DurationHours)
	}
	return out
}

func loadWorkload(tracePath, dataset string, scale float64) (*mcss.Workload, error) {
	switch {
	case tracePath != "":
		return mcss.LoadTrace(tracePath)
	case strings.EqualFold(dataset, "twitter"):
		return mcss.GenerateTwitter(mcss.DefaultTwitterTrace().Scale(scale))
	case strings.EqualFold(dataset, "spotify"):
		return mcss.GenerateSpotify(mcss.DefaultSpotifyTrace().Scale(scale))
	case dataset == "":
		return nil, fmt.Errorf("need -trace or -dataset")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
