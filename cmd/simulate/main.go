// Command simulate solves MCSS for a workload, replays it through the
// discrete-event pub/sub simulator, and reports empirical satisfaction,
// traffic, and latency — optionally injecting a VM crash and repairing it
// with the online provisioner.
//
// With -timeline (a saved timeline file) or -diurnal (synthesizing a daily
// cycle from the dataset), it instead drives the elastic controller over
// the epoch sequence and replays every epoch's allocation through the
// simulator, verifying each one stays satisfied.
//
// Examples:
//
//	simulate -dataset spotify -scale 0.02 -tau 50 -hours 2
//	simulate -dataset twitter -scale 0.01 -tau 10 -hours 1 -poisson
//	simulate -trace t.gz -tau 100 -crash-vm 0 -crash-at 0.5 -repair
//	simulate -dataset twitter -scale 0.01 -tau 100 -diurnal -epochs 12
//	simulate -timeline day.timeline.gz -tau 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/cli"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/obs"
	"github.com/pubsub-systems/mcss/internal/obs/slogx"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/report"
	"github.com/pubsub-systems/mcss/internal/satisfy"
)

func main() {
	os.Exit(cli.ExitCode("simulate", run(os.Args[1:]), os.Stderr))
}

func run(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "workload trace file")
		dataset   = fs.String("dataset", "", "synthetic dataset: twitter or spotify")
		scale     = fs.Float64("scale", 0.02, "synthetic dataset scale factor")
		tau       = fs.Int64("tau", 50, "satisfaction threshold τ (events/hour)")
		hours     = fs.Float64("hours", 2, "virtual simulation horizon")
		poisson   = fs.Bool("poisson", false, "Poisson arrivals instead of fixed spacing")
		seed      = fs.Int64("seed", 1, "Poisson seed")
		maxEvents = fs.Int64("max-events", 5_000_000, "event cap")
		crashVM   = fs.Int("crash-vm", -1, "VM to crash (-1 = none)")
		crashAt   = fs.Float64("crash-at", 0.5, "crash time in virtual hours")
		repair    = fs.Bool("repair", false, "repair the crash with the online provisioner and re-simulate")

		timelinePath = fs.String("timeline", "", "timeline file: replay epoch-by-epoch through the elastic controller")
		diurnal      = fs.Bool("diurnal", false, "modulate the dataset into a diurnal timeline and replay it")
		epochs       = fs.Int("epochs", 24, "diurnal timeline epochs")
		epochMinutes = fs.Int64("epoch-minutes", 60, "diurnal epoch duration")
		satisfyFrac  = fs.Float64("satisfy-frac", 0.5, "fraction of τ_v·hours each subscriber must receive in replay")

		topologyPath = fs.String("topology", "", "multi-region topology file: solve with the topo strategies and bill cross-region egress")
		sloMillis    = fs.Int64("slo", 0, "latency SLO ceiling in ms on modeled delivery RTT (0 = none; needs -topology)")

		spotChaos  = fs.Bool("spot", false, "timeline mode: chaos replay on a spot market (price schedule, reclamation storms, group repair) vs all-on-demand")
		spotMarket = fs.String("spot-market", "", "spot market file for -spot (empty = generate one matched to the timeline)")
		chaosSeed  = fs.Int64("chaos-seed", 1, "reclamation draw seed for -spot")

		chaosApply     = fs.Int("chaos-apply", 0, "run N fault-injected journaled applies over the timeline's plans (transient faults + mid-apply crashes) and verify exactly-once recovery")
		chaosApplySeed = fs.Int64("chaos-apply-seed", 1, "seed for the -chaos-apply sweep")

		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		progress = fs.Bool("progress", false, "stream per-stage solver progress to stderr")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics on this address for the life of the run")
		metricsDump = fs.String("metrics-dump", "", "write the final metrics registry as JSON to this file")
	)
	logLevel := slogx.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Setup(os.Stderr, *logLevel)
	ctx, stop := cli.Context(*timeout)
	defer stop()

	m := obs.NewMetrics(nil)
	if *metricsAddr != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metricsAddr, m.Registry)
		if err != nil {
			return err
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "serving metrics on %s\n", addr)
	}
	watchers := []mcss.Observer{m.Observer()}
	if *progress {
		watchers = append(watchers, report.NewProgress(os.Stderr))
	}
	ctx = mcss.ContextWithObserver(ctx, obs.Tee(watchers...))

	if *chaosApply > 0 {
		return runChaosApply(ctx, chaosApplyArgs{
			timelineArgs: timelineArgs{
				path: *timelinePath, dataset: *dataset, scale: *scale,
				tau: *tau, epochs: *epochs, epochMinutes: *epochMinutes,
			},
			cases: *chaosApply, seed: *chaosApplySeed,
		})
	}

	if *timelinePath != "" || *diurnal {
		err := runTimeline(ctx, timelineArgs{
			path: *timelinePath, dataset: *dataset, scale: *scale,
			tau: *tau, epochs: *epochs, epochMinutes: *epochMinutes,
			maxEvents: *maxEvents, satisfyFrac: *satisfyFrac,
			spot: *spotChaos, spotMarket: *spotMarket, chaosSeed: *chaosSeed,
			topologyPath: *topologyPath, sloMillis: *sloMillis,
			metrics: m,
		})
		if derr := dumpMetrics(m, *metricsDump); derr != nil && err == nil {
			err = derr
		}
		return err
	}

	w, err := loadWorkload(*tracePath, *dataset, *scale)
	if err != nil {
		return err
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	popts := []mcss.Option{mcss.WithTau(*tau), mcss.WithModel(model)}
	topology, topts, err := topologyOptions(*topologyPath, *sloMillis, model.SingleFleet())
	if err != nil {
		return err
	}
	popts = append(popts, topts...)
	p, err := mcss.NewPlanner(popts...)
	if err != nil {
		return err
	}
	cfg := p.Config()

	prov, err := p.Provision(ctx, w)
	if err != nil {
		return err
	}
	alloc := prov.Allocation()
	m.RecordAllocation(alloc, model)
	if topology != nil {
		m.RecordTopology(topology, alloc)
		lat := mcss.EvalLatency(topology, w, alloc, cfg.MessageBytes, *sloMillis)
		m.SetSLOViolations(lat.Violations)
		fmt.Printf("topology: %d regions, modeled RTT p50 %d ms / p99 %d ms / max %d ms, %d SLO violations, egress %v/h (%d bytes/h)\n",
			topology.NumRegions(), lat.P50Millis, lat.P99Millis, lat.MaxMillis,
			lat.Violations, lat.EgressCostPerHour, lat.EgressBytesPerHour)
	}
	u := alloc.ComputeUtilization()
	fmt.Printf("workload: %d topics / %d subscribers / %d pairs\n",
		w.NumTopics(), w.NumSubscribers(), w.NumPairs())
	fmt.Printf("allocation: %d VMs, mean fill %.0f%%, incoming share %.1f%%, %d split topics\n",
		alloc.NumVMs(), u.MeanFill*100, u.IncomingShare*100, u.SplitTopics)

	simCfg := mcss.SimConfig{
		DurationHours: *hours,
		MessageBytes:  cfg.MessageBytes,
		MaxEvents:     *maxEvents,
		Poisson:       *poisson,
		PoissonSeed:   *seed,
	}
	if *crashVM >= 0 {
		simCfg.Crashes = []mcss.Crash{{VM: *crashVM, AtHour: *crashAt}}
	}

	start := time.Now()
	sim, err := mcss.Simulate(w, alloc, simCfg)
	if err != nil {
		return err
	}
	printSim(w, sim, *tau)
	fmt.Printf("(simulated in %s)\n", time.Since(start).Round(time.Millisecond))

	if *crashVM >= 0 && *repair {
		stats, err := prov.RepairCrash(*crashVM)
		if err != nil {
			return err
		}
		fmt.Printf("\nrepair: re-homed %d pairs onto %d-VM fleet (%d new)\n",
			stats.PairsRehomed, stats.VMsAfter, stats.NewVMs)
		simCfg.Crashes = nil
		sim, err = mcss.Simulate(w, prov.Allocation(), simCfg)
		if err != nil {
			return err
		}
		printSim(w, sim, *tau)
	}
	return dumpMetrics(m, *metricsDump)
}

// dumpMetrics writes the registry as JSON so a perf run carries its
// telemetry next to the printed report. Empty path is a no-op.
func dumpMetrics(m *obs.Metrics, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Registry.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printSim(w *mcss.Workload, sim *mcss.SimResult, tau int64) {
	m := satisfy.Measure(w, perHour(sim), tau)
	fmt.Printf("simulated %v h: %d publications, %d deliveries, %d dropped\n",
		sim.DurationHours, sim.Events, sim.Deliveries, sim.DroppedDeliveries)
	fmt.Printf("satisfaction: %d/%d subscribers (mean ratio %.3f, min %.3f)\n",
		m.Satisfied, m.Total, m.MeanRatio, m.MinRatio)
	if sim.MaxLatencyNanos > 0 {
		fmt.Printf("latency: mean %s, max %s\n",
			time.Duration(sim.MeanLatencyNanos()), time.Duration(sim.MaxLatencyNanos))
	}
}

// perHour converts cumulative delivered counts into events/hour for the
// satisfaction metrics (floor effects make this slightly conservative).
func perHour(sim *mcss.SimResult) []int64 {
	out := make([]int64, len(sim.Delivered))
	for v, d := range sim.Delivered {
		out[v] = int64(float64(d) / sim.DurationHours)
	}
	return out
}

type timelineArgs struct {
	path, dataset string
	scale         float64
	tau           int64
	epochs        int
	epochMinutes  int64
	maxEvents     int64
	satisfyFrac   float64
	spot          bool
	spotMarket    string
	chaosSeed     int64
	topologyPath  string
	sloMillis     int64
	metrics       *obs.Metrics
}

// topologyOptions loads the topology (empty path = none) and returns the
// planner options wiring it in: the topology itself, the SLO ceiling, and
// — for a multi-region topology — the base fleet replicated per region and
// the region-aware strategies.
func topologyOptions(path string, sloMillis int64, base mcss.Fleet) (*mcss.NetworkTopology, []mcss.Option, error) {
	if path == "" {
		return nil, nil, nil
	}
	topology, err := mcss.LoadTopology(path)
	if err != nil {
		return nil, nil, fmt.Errorf("loading topology: %w", err)
	}
	opts := []mcss.Option{mcss.WithTopology(topology), mcss.WithLatencySLO(sloMillis)}
	if topology.NumRegions() > 1 {
		fleet, err := mcss.RegionalFleet(base, topology)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts,
			mcss.WithFleet(fleet),
			mcss.WithStage1(mcss.TopoStage1Strategy),
			mcss.WithStage2(mcss.TopoStage2Strategy),
		)
	}
	return topology, opts, nil
}

// buildTimeline loads the timeline file when one was given, otherwise
// synthesizes the diurnal cycle from the dataset — the same timeline
// family both replay and the chaos-apply sweep exercise.
func buildTimeline(a timelineArgs) (*mcss.Timeline, error) {
	if a.path != "" {
		return mcss.LoadTimeline(a.path)
	}
	base, err := loadWorkload("", a.dataset, a.scale)
	if err != nil {
		return nil, err
	}
	// The experiment's modulation (flash crowd included), so replay
	// exercises the same timeline family -fig diurnal reports on.
	cfg := experiments.DiurnalModulation()
	cfg.Epochs = a.epochs
	cfg.EpochMinutes = a.epochMinutes
	if cfg.FlashEpoch >= cfg.Epochs {
		cfg.FlashEpoch = cfg.Epochs / 2
	}
	return mcss.GenerateDiurnal(base, cfg)
}

// runTimeline drives the elastic controller over a timeline and replays
// every epoch's allocation through the simulator, failing if any epoch
// falls short of its satisfaction thresholds.
func runTimeline(ctx context.Context, a timelineArgs) error {
	tl, err := buildTimeline(a)
	if err != nil {
		return err
	}

	env, err := tl.Envelope()
	if err != nil {
		return err
	}
	// The same envelope-calibrated fleet the diurnal experiment sizes
	// against, so replay verifies what -fig diurnal reports.
	popts := []mcss.Option{
		mcss.WithTau(a.tau),
		mcss.WithModel(mcss.NewModel(mcss.C3Large)),
		mcss.WithFleet(experiments.FleetFor(env)),
	}
	topology, topts, err := topologyOptions(a.topologyPath, a.sloMillis, experiments.FleetFor(env))
	if err != nil {
		return err
	}
	popts = append(popts, topts...)
	p, err := mcss.NewPlanner(popts...)
	if err != nil {
		return err
	}
	cfg := p.Config()

	var rep, baseline *mcss.ElasticRunReport
	if a.spot {
		var market *mcss.SpotMarket
		if a.spotMarket != "" {
			market, err = mcss.LoadSpotMarket(a.spotMarket)
		} else {
			// A market matched to the timeline, using the experiment's
			// generator settings so replay exercises the same market family
			// `experiments -fig spot` reports on.
			market, err = mcss.GenerateSpotMarket(experiments.FleetFor(env),
				experiments.SpotMarketConfig(tl.NumEpochs(), tl.EpochMinutes))
		}
		if err != nil {
			return err
		}
		rep, err = p.RunTimelineSpot(ctx, tl, mcss.DefaultElasticPolicy(), market,
			mcss.SpotRunConfig{ChaosSeed: a.chaosSeed})
		if err != nil {
			return err
		}
		// The all-on-demand run over the same timeline — the bill the spot
		// portfolio's realized savings are measured against.
		baseline, err = p.RunTimeline(ctx, tl, mcss.DefaultElasticPolicy())
		if err != nil {
			return err
		}
	} else {
		rep, err = p.RunTimeline(ctx, tl, mcss.DefaultElasticPolicy())
		if err != nil {
			return err
		}
	}
	if a.metrics != nil {
		for _, ep := range rep.Epochs {
			a.metrics.RecordEpochReport(ep)
		}
		a.metrics.RecordLedger(rep.Ledger)
		if n := len(rep.Allocations); n > 0 {
			a.metrics.RecordAllocation(rep.Allocations[n-1], p.Config().Model)
			if topology != nil {
				a.metrics.RecordTopology(topology, rep.Allocations[n-1])
			}
		}
	}
	fmt.Printf("timeline: %d epochs × %d min, %d topics / %d subscribers\n",
		tl.NumEpochs(), tl.EpochMinutes, tl.Epochs[0].NumTopics(), tl.Epochs[0].NumSubscribers())

	unsatisfied := 0
	for e, alloc := range rep.Allocations {
		w := tl.Epochs[e]
		sim, err := mcss.Simulate(w, alloc, mcss.SimConfig{
			DurationHours: tl.EpochHours(),
			MessageBytes:  cfg.MessageBytes,
			MaxEvents:     a.maxEvents,
		})
		if err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		m := satisfy.Measure(w, perHour(sim), a.tau)
		status := "ok"
		if err := mcss.CheckSatisfaction(w, sim, a.tau, a.satisfyFrac); err != nil {
			status = "UNSATISFIED"
			unsatisfied++
		}
		ep := rep.Epochs[e]
		if a.spot {
			fmt.Printf("epoch %2d: %d active / %d billed VMs, %7d moved, %4d reclaimed, %7d repaired, %8d lost pair-min, %9d deliveries, mean ratio %.3f [%s]\n",
				e, ep.ActiveVMs, ep.BilledVMs, ep.PairsMoved, ep.ReclaimedVMs,
				ep.RepairedPairs, ep.LostPairMinutes, sim.Deliveries, m.MeanRatio, status)
		} else {
			fmt.Printf("epoch %2d: %d active / %d billed VMs, %7d moved, %6d added, %9d deliveries, mean ratio %.3f [%s]\n",
				e, ep.ActiveVMs, ep.BilledVMs, ep.PairsMoved, ep.AddedPairs, sim.Deliveries, m.MeanRatio, status)
		}
	}
	if topology != nil && rep.Ledger.EgressBytes() > 0 {
		fmt.Printf("bill: total %v (rental %v + transfer %v + egress %v), %d started VM-hours, %d pairs moved\n",
			rep.TotalCost(), rep.RentalCost(), rep.TransferCost(), rep.EgressCost(),
			rep.Ledger.StartedHours(), rep.TotalMoved())
	} else {
		fmt.Printf("bill: total %v (rental %v + transfer %v), %d started VM-hours, %d pairs moved\n",
			rep.TotalCost(), rep.RentalCost(), rep.TransferCost(), rep.Ledger.StartedHours(), rep.TotalMoved())
	}
	if a.spot && baseline != nil {
		var reclaimed, groups int
		var lost int64
		for _, ep := range rep.Epochs {
			reclaimed += ep.ReclaimedVMs
			groups += ep.ReclaimGroups
			lost += ep.LostPairMinutes
		}
		savings := 0.0
		if baseline.TotalCost() != 0 {
			savings = 1 - float64(rep.TotalCost())/float64(baseline.TotalCost())
		}
		if a.metrics != nil {
			a.metrics.SetSpotSavings(savings)
		}
		fmt.Printf("chaos: %d VMs reclaimed in %d groups, %d pair-minutes lost to repair lag\n",
			reclaimed, groups, lost)
		fmt.Printf("spot portfolio bill %v vs all-on-demand %v — realized savings %.1f%%\n",
			rep.TotalCost(), baseline.TotalCost(), savings*100)
	}
	if unsatisfied > 0 {
		return fmt.Errorf("%d of %d epochs fell short of satisfaction in replay", unsatisfied, tl.NumEpochs())
	}
	fmt.Println("every epoch satisfied under simulation replay")
	return nil
}

func loadWorkload(tracePath, dataset string, scale float64) (*mcss.Workload, error) {
	switch {
	case tracePath != "":
		return mcss.LoadTrace(tracePath)
	case strings.EqualFold(dataset, "twitter"):
		return mcss.GenerateTwitter(mcss.DefaultTwitterTrace().Scale(scale))
	case strings.EqualFold(dataset, "spotify"):
		return mcss.GenerateSpotify(mcss.DefaultSpotifyTrace().Scale(scale))
	case dataset == "":
		return nil, fmt.Errorf("need -trace or -dataset")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
