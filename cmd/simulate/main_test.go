package main

import (
	"testing"

	mcss "github.com/pubsub-systems/mcss"
)

func TestRunHealthy(t *testing.T) {
	err := run([]string{"-dataset", "spotify", "-scale", "0.01", "-tau", "50", "-hours", "1"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPoisson(t *testing.T) {
	err := run([]string{"-dataset", "spotify", "-scale", "0.01", "-tau", "50", "-hours", "1", "-poisson", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCrashAndRepair(t *testing.T) {
	err := run([]string{
		"-dataset", "spotify", "-scale", "0.01", "-tau", "50", "-hours", "1",
		"-crash-vm", "0", "-crash-at", "0.5", "-repair",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	bad := [][]string{
		{},                  // no source
		{"-dataset", "???"}, // unknown dataset
		{"-dataset", "spotify", "-scale", "0.01", "-crash-vm", "9999"}, // unknown VM
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestPerHour(t *testing.T) {
	sim := &mcss.SimResult{Delivered: []int64{20, 5}, DurationHours: 2}
	got := perHour(sim)
	if got[0] != 10 || got[1] != 2 {
		t.Errorf("perHour = %v, want [10 2]", got)
	}
}
