package main

import (
	"path/filepath"
	"testing"

	mcss "github.com/pubsub-systems/mcss"
)

func TestRunHealthy(t *testing.T) {
	err := run([]string{"-dataset", "spotify", "-scale", "0.01", "-tau", "50", "-hours", "1"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPoisson(t *testing.T) {
	err := run([]string{"-dataset", "spotify", "-scale", "0.01", "-tau", "50", "-hours", "1", "-poisson", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCrashAndRepair(t *testing.T) {
	err := run([]string{
		"-dataset", "spotify", "-scale", "0.01", "-tau", "50", "-hours", "1",
		"-crash-vm", "0", "-crash-at", "0.5", "-repair",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	bad := [][]string{
		{},                  // no source
		{"-dataset", "???"}, // unknown dataset
		{"-dataset", "spotify", "-scale", "0.01", "-crash-vm", "9999"}, // unknown VM
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestPerHour(t *testing.T) {
	sim := &mcss.SimResult{Delivered: []int64{20, 5}, DurationHours: 2}
	got := perHour(sim)
	if got[0] != 10 || got[1] != 2 {
		t.Errorf("perHour = %v, want [10 2]", got)
	}
}

func TestRunDiurnalTimelineReplay(t *testing.T) {
	err := run([]string{
		"-dataset", "twitter", "-scale", "0.005", "-tau", "50",
		"-diurnal", "-epochs", "4", "-epoch-minutes", "60",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTimelineFromFile(t *testing.T) {
	base, err := mcss.GenerateRandom(mcss.RandomTraceConfig{
		Topics: 30, Subscribers: 150, MaxFollowings: 4, MaxRate: 200, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mcss.DefaultDiurnalTrace()
	cfg.Epochs, cfg.EpochMinutes = 3, 60
	tl, err := mcss.GenerateDiurnal(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.timeline")
	if err := mcss.SaveTimeline(tl, path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-timeline", path, "-tau", "40"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
