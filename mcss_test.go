package mcss_test

import (
	"fmt"
	"path/filepath"
	"testing"

	mcss "github.com/pubsub-systems/mcss"
)

// buildDemo constructs a small social workload through the public API.
func buildDemo(t *testing.T) *mcss.Workload {
	t.Helper()
	b := mcss.NewWorkloadBuilder().
		AddTopic("artist-a", 120).
		AddTopic("artist-b", 40).
		AddTopic("friend-c", 8)
	for i := 0; i < 20; i++ {
		u := fmt.Sprintf("user-%d", i)
		b.AddSubscription(u, "artist-a")
		if i%2 == 0 {
			b.AddSubscription(u, "artist-b")
		}
		if i%5 == 0 {
			b.AddSubscription(u, "friend-c")
		}
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func demoConfig(tau int64) mcss.SolverConfig {
	m := mcss.NewModel(mcss.C3Large)
	m.CapacityOverrideBytesPerHour = 60_000 // force a multi-VM fleet
	return mcss.DefaultConfig(tau, m)
}

func TestPublicSolveEndToEnd(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(50)
	res, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation.NumVMs() == 0 {
		t.Fatal("no VMs")
	}
	if err := mcss.Verify(w, res.Selection, res.Allocation, cfg); err != nil {
		t.Errorf("Verify: %v", err)
	}
	lb, err := mcss.LowerBound(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Cost > res.Cost(cfg.Model) {
		t.Errorf("lower bound %v above solution %v", lb.Cost, res.Cost(cfg.Model))
	}
}

func TestPublicGeneratorsAndTraceIO(t *testing.T) {
	tw, err := mcss.GenerateTwitter(mcss.DefaultTwitterTrace().Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := mcss.GenerateSpotify(mcss.DefaultSpotifyTrace().Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if tw.NumPairs() == 0 || sp.NumPairs() == 0 {
		t.Fatal("empty generated traces")
	}
	path := filepath.Join(t.TempDir(), "trace.gz")
	if err := mcss.SaveTrace(tw, path); err != nil {
		t.Fatal(err)
	}
	back, err := mcss.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPairs() != tw.NumPairs() {
		t.Errorf("round trip pairs %d != %d", back.NumPairs(), tw.NumPairs())
	}
}

func TestPublicSimulation(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(50)
	res, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mcss.Simulate(w, res.Allocation, mcss.SimConfig{
		DurationHours: 2,
		MessageBytes:  cfg.MessageBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcss.CheckSatisfaction(w, sim, cfg.Tau, 0.9); err != nil {
		t.Errorf("CheckSatisfaction: %v", err)
	}
}

func TestPublicCluster(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(50)
	res, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mcss.NewCluster(w, res.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Publish(mcss.Message{Topic: 0, Payload: make([]byte, 200)}); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if c.TotalDelivered() == 0 {
		t.Error("no deliveries")
	}
}

func TestPublicProvisioner(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(50)
	p, err := mcss.NewProvisioner(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Update(mcss.Delta{
		NewSubscribers: 1,
		Subscribe:      []mcss.Pair{{Topic: 0, Sub: mcss.SubID(w.NumSubscribers())}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VMsAfter == 0 {
		t.Error("no VMs after update")
	}
}

func TestPublicExact(t *testing.T) {
	w, err := mcss.NewWorkloadBuilder().
		AddTopic("a", 5).
		AddTopic("b", 7).
		AddSubscription("v", "a").
		AddSubscription("v", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := demoConfig(6)
	cfg.MessageBytes = 1
	sol, err := mcss.SolveExact(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 1 {
		t.Errorf("Selected = %v, want a single pair", sol.Selected)
	}
	res, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost(cfg.Model) < sol.Cost {
		t.Error("heuristic beat exact")
	}
}

func TestInstanceCatalogLookup(t *testing.T) {
	if len(mcss.InstanceCatalog()) < 2 {
		t.Fatal("catalog too small")
	}
	it, ok := mcss.InstanceByName("c3.large")
	if !ok || it != mcss.C3Large {
		t.Errorf("lookup failed: %v %v", it, ok)
	}
}

// ExampleSolve demonstrates the minimal end-to-end flow.
func ExampleSolve() {
	w, _ := mcss.NewWorkloadBuilder().
		AddTopic("artist", 60). // 60 events/hour
		AddSubscription("alice", "artist").
		AddSubscription("bob", "artist").
		Build()

	model := mcss.NewModel(mcss.C3Large)
	cfg := mcss.DefaultConfig(100, model)
	res, _ := mcss.Solve(w, cfg)

	fmt.Println("VMs:", res.Allocation.NumVMs())
	fmt.Println("pairs:", res.Selection.NumPairs())
	// Output:
	// VMs: 1
	// pairs: 2
}

func TestPublicSatisfactionAPI(t *testing.T) {
	w := buildDemo(t)
	const tau = 50

	budget := mcss.MinBudgetToSatisfyAll(w, tau, 200)
	if budget <= 0 {
		t.Fatal("non-positive budget")
	}
	res, err := mcss.MaximizeSatisfied(w, tau, budget, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != w.NumSubscribers() {
		t.Errorf("at min budget satisfied %d of %d", len(res.Satisfied), w.NumSubscribers())
	}

	// Half the budget satisfies fewer subscribers.
	half, err := mcss.MaximizeSatisfied(w, tau, budget/2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(half.Satisfied) >= len(res.Satisfied) {
		t.Errorf("half budget satisfied %d, want fewer than %d",
			len(half.Satisfied), len(res.Satisfied))
	}

	delivered := make([]int64, w.NumSubscribers())
	m := mcss.MeasureSatisfaction(w, delivered, tau)
	if m.Satisfied != 0 || m.AllSatisfied() {
		t.Errorf("zero deliveries metrics = %+v", m)
	}
}

func TestPublicUtilization(t *testing.T) {
	w := buildDemo(t)
	cfg := demoConfig(50)
	res, err := mcss.Solve(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var u mcss.Utilization = res.Allocation.ComputeUtilization()
	if u.MeanFill <= 0 || u.MeanFill > 1 {
		t.Errorf("MeanFill = %v", u.MeanFill)
	}
}

// maxTopicRate is a helper for fleet calibration in tests.
func maxTopicRate(w *mcss.Workload) int64 {
	var max int64
	for t := 0; t < w.NumTopics(); t++ {
		if r := w.Rate(mcss.TopicID(t)); r > max {
			max = r
		}
	}
	return max
}

// TestHeterogeneousNeverWorseThanBestHomogeneous is the public-API
// guarantee behind heterogeneous fleets: handing Solve the full C3 catalog
// as the fleet yields cost no worse than the cheapest single-type solve,
// on Twitter-like, Spotify-like, and uniform random traces.
func TestHeterogeneousNeverWorseThanBestHomogeneous(t *testing.T) {
	twitter, err := mcss.GenerateTwitter(mcss.DefaultTwitterTrace().Scale(0.04))
	if err != nil {
		t.Fatal(err)
	}
	spotify, err := mcss.GenerateSpotify(mcss.DefaultSpotifyTrace().Scale(0.04))
	if err != nil {
		t.Fatal(err)
	}
	random, err := mcss.GenerateRandom(mcss.RandomTraceConfig{
		Topics: 120, Subscribers: 600, MaxFollowings: 6, MaxRate: 80, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := map[string]*mcss.Workload{
		"twitter": twitter,
		"spotify": spotify,
		"random":  random,
	}
	for name, w := range traces {
		// Calibrate the catalog so c3.large holds a handful of the
		// hottest topic's pairs; capacities stay proportional to link
		// speed across the fleet.
		bpm := maxTopicRate(w) * 200 / 16 // c3.large cap = 4 × hottest topic bw
		fleet := mcss.CatalogFleet().WithBytesPerMbps(bpm)
		model := mcss.NewModel(mcss.C3Large)

		mixed, err := mcss.Solve(w, mcss.DefaultFleetConfig(100, model, fleet))
		if err != nil {
			t.Fatalf("%s mixed solve: %v", name, err)
		}
		mixedCfg := mcss.DefaultFleetConfig(100, model, fleet)
		if err := mcss.Verify(w, mixed.Selection, mixed.Allocation, mixedCfg); err != nil {
			t.Errorf("%s mixed verify: %v", name, err)
		}
		lb, err := mcss.LowerBound(w, mixedCfg)
		if err != nil {
			t.Fatalf("%s lower bound: %v", name, err)
		}
		if lb.Cost > mixed.Cost(model) {
			t.Errorf("%s: lower bound %v above mixed cost %v", name, lb.Cost, mixed.Cost(model))
		}

		bestHomo := mcss.MicroUSD(0)
		found := false
		for _, it := range mcss.InstanceCatalog() {
			single, err := mcss.NewFleet(it)
			if err != nil {
				t.Fatal(err)
			}
			cfg := mcss.DefaultFleetConfig(100, model, single.WithBytesPerMbps(bpm))
			res, err := mcss.Solve(w, cfg)
			if err != nil {
				continue // type too small for the hottest topic
			}
			if err := mcss.Verify(w, res.Selection, res.Allocation, cfg); err != nil {
				t.Errorf("%s %s verify: %v", name, it.Name, err)
			}
			if c := res.Cost(model); !found || c < bestHomo {
				bestHomo, found = c, true
			}
		}
		if !found {
			t.Fatalf("%s: no feasible homogeneous type", name)
		}
		if mixed.Cost(model) > bestHomo {
			t.Errorf("%s: mixed fleet %v costs more than best homogeneous %v",
				name, mixed.Cost(model), bestHomo)
		}
		t.Logf("%s: mixed %v (mix %v) vs best homogeneous %v",
			name, mixed.Cost(model), mixed.Allocation.InstanceMix(), bestHomo)
	}
}
