package mcss

import (
	"context"
	"errors"
	"fmt"

	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/deploy"
	"github.com/pubsub-systems/mcss/internal/dynamic"
	"github.com/pubsub-systems/mcss/internal/elastic"
	"github.com/pubsub-systems/mcss/internal/exact"
	"github.com/pubsub-systems/mcss/internal/spot"
)

// ErrBadOption reports an invalid Planner option; every validation failure
// from NewPlanner wraps it, so callers can errors.Is against one sentinel
// while the message names the offending option.
var ErrBadOption = errors.New("mcss: bad planner option")

// Observer receives progress callbacks from long-running Planner calls:
// OnStageStart/OnProgress/OnStageDone bracket each solver stage (pair
// selection, packing, lower bound, exact DP) and OnEpoch fires after each
// timeline epoch of an elastic run. See core.Observer for the full
// contract; implementations must be cheap and need not be goroutine-safe
// (callbacks fire from the calling goroutine).
type Observer = core.Observer

// Strategy is a named, pluggable solver implementation: a Stage-1 pair
// selector, a Stage-2 packer, a complete solver, or any combination. The
// built-ins are registered as "gsp"/"greedy", "rsp"/"random" (Stage 1),
// "cbp"/"custom", "ffbp"/"first-fit", "bfd" (Stage 2), and "exact" (full
// solve); register your own with RegisterStrategy and select it with
// WithStage1/WithStage2/WithStrategy.
type Strategy = core.Strategy

// RegisterStrategy adds a named strategy to the registry (case-insensitive
// names; duplicates are an error).
func RegisterStrategy(name string, s Strategy) error { return core.RegisterStrategy(name, s) }

// StrategyByName looks up a registered strategy.
func StrategyByName(name string) (Strategy, bool) { return core.StrategyByName(name) }

// StrategyNames lists the registered strategy names, sorted.
func StrategyNames() []string { return core.StrategyNames() }

// ContextWithObserver returns a context carrying obs: every solver layer
// (solves, lower bounds, the exact DP, elastic runs) falls back to the
// context's observer when no WithObserver/Config.Observer was set. Use it
// to switch on progress reporting across a whole call tree from one place;
// an explicitly configured observer takes precedence.
func ContextWithObserver(ctx context.Context, obs Observer) context.Context {
	return core.ContextWithObserver(ctx, obs)
}

// NopObserver ignores every callback — the explicit-silence observer
// WithObserver(nil) attaches.
var NopObserver = core.NopObserver

// ExactSolution is the exact solver's result type.
type ExactSolution = exact.Solution

// Option configures a Planner under construction.
type Option func(*plannerBuilder)

type plannerBuilder struct {
	cfg        SolverConfig
	tauSet     bool
	modelSet   bool
	stage1Name string
	stage2Name string
	solveName  string
	errs       []error
}

func (b *plannerBuilder) addErr(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("%w: "+format, append([]any{ErrBadOption}, args...)...))
}

// WithTau sets the satisfaction threshold τ in events per hour (required,
// must be positive).
func WithTau(tau int64) Option {
	return func(b *plannerBuilder) {
		b.tauSet = true // the option was supplied, even if invalid
		if tau <= 0 {
			b.addErr("WithTau: τ must be positive, got %d", tau)
			return
		}
		b.cfg.Tau = tau
	}
}

// WithModel sets the pricing model (required): rental duration, transfer
// pricing, and — for single-type solves — the VM capacity.
func WithModel(m Model) Option {
	return func(b *plannerBuilder) {
		if m == (Model{}) {
			b.addErr("WithModel: model is the zero value (build one with NewModel)")
			return
		}
		b.cfg.Model = m
		b.modelSet = true
	}
}

// WithFleet lets Stage 2 mix instance sizes from the given heterogeneous
// fleet; the fleet must not be empty.
func WithFleet(f Fleet) Option {
	return func(b *plannerBuilder) {
		if f.IsZero() || f.Len() == 0 {
			b.addErr("WithFleet: fleet is empty")
			return
		}
		b.cfg.Fleet = f
	}
}

// WithStage1 selects the Stage-1 pair-selection strategy by registered
// name (e.g. "gsp", "rsp"); the default is "gsp".
func WithStage1(name string) Option {
	return func(b *plannerBuilder) { b.stage1Name = name }
}

// WithStage2 selects the Stage-2 packing strategy by registered name
// (e.g. "cbp", "ffbp", "bfd"); the default is "cbp".
func WithStage2(name string) Option {
	return func(b *plannerBuilder) { b.stage2Name = name }
}

// WithStrategy selects a full-solve strategy by registered name (e.g.
// "exact"), replacing both stages.
func WithStrategy(name string) Option {
	return func(b *plannerBuilder) { b.solveName = name }
}

// WithOptFlags toggles CustomBinPacking's optimizations; the default is
// OptAll.
func WithOptFlags(f OptFlags) Option {
	return func(b *plannerBuilder) { b.cfg.Opts = f }
}

// WithMessageBytes sets the notification size in bytes; the default is the
// paper's 200.
func WithMessageBytes(n int64) Option {
	return func(b *plannerBuilder) {
		if n <= 0 {
			b.addErr("WithMessageBytes: size must be positive, got %d", n)
			return
		}
		b.cfg.MessageBytes = n
	}
}

// WithTopology attaches a multi-region network topology: instance types
// and workload endpoints resolve their region tags against it, the "topo"
// strategies partition packing by region, and elastic runs bill
// cross-region egress on top of rental and transfer. A nil topology (the
// default) is the paper's single-region setting.
func WithTopology(t Topology) Option {
	return func(b *plannerBuilder) { b.cfg.Topology = t }
}

// WithLatencySLO caps each subscription's modeled delivery RTT
// (publisher→broker plus broker→subscriber) at millis; the "topo" packer
// only places pairs in SLO-feasible regions and fails with ErrInfeasible
// when none has capacity. Zero (the default) disables the ceiling; only
// meaningful together with WithTopology.
func WithLatencySLO(millis int64) Option {
	return func(b *plannerBuilder) {
		if millis < 0 {
			b.addErr("WithLatencySLO: ceiling must be non-negative, got %d", millis)
			return
		}
		b.cfg.LatencySLOMillis = millis
	}
}

// WithObserver streams progress callbacks from every long-running Planner
// call to obs. Passing nil pins the planner to silence: it attaches
// NopObserver, which also suppresses any ambient observer installed via
// ContextWithObserver.
func WithObserver(obs Observer) Option {
	return func(b *plannerBuilder) {
		if obs == nil {
			obs = NopObserver
		}
		b.cfg.Observer = obs
	}
}

// WithParallelism sets the Stage-1 worker count: 0 or 1 solve serially,
// n > 1 shards across n goroutines, negative uses GOMAXPROCS. Results are
// bit-identical regardless.
func WithParallelism(workers int) Option {
	return func(b *plannerBuilder) { b.cfg.Parallelism = workers }
}

// WithLenientFirstFit reproduces the paper's literal Alg. 3 capacity test,
// which may overshoot a VM's capacity by one topic rate.
func WithLenientFirstFit(lenient bool) Option {
	return func(b *plannerBuilder) { b.cfg.LenientFirstFit = lenient }
}

// Planner is the context-aware entry point to the solver stack: build one
// from functional options, then call Solve, LowerBound, SolveExact,
// Provision, or RunTimeline with a context — every long-running path polls
// cancellation at bounded intervals and reports progress to the configured
// Observer. A Planner is immutable after construction and safe for
// concurrent use as long as its Observer is (the built-in paths call the
// Observer from the calling goroutine only).
//
//	p, err := mcss.NewPlanner(
//	        mcss.WithTau(100),
//	        mcss.WithModel(mcss.NewModel(mcss.C3Large)),
//	        mcss.WithFleet(mcss.CatalogFleet()),
//	)
//	res, err := p.Solve(ctx, w)
type Planner struct {
	cfg SolverConfig
}

// NewPlanner validates the options and builds a Planner. All validation
// failures are reported up front (joined, each wrapping ErrBadOption):
// non-positive τ, a zero pricing model, an empty fleet, an unknown or
// role-mismatched strategy name, or a non-positive message size — rather
// than surfacing later from inside a solve.
func NewPlanner(opts ...Option) (*Planner, error) {
	b := &plannerBuilder{}
	b.cfg.Stage1 = Stage1Greedy
	b.cfg.Stage2 = Stage2Custom
	b.cfg.Opts = OptAll
	b.cfg.MessageBytes = 200
	for _, opt := range opts {
		opt(b)
	}
	if !b.tauSet && b.cfg.Tau <= 0 {
		b.addErr("WithTau is required: τ must be a positive event rate")
	}
	if !b.modelSet {
		b.addErr("WithModel is required: the solver needs a pricing model")
	}
	if b.stage1Name != "" {
		s, ok := StrategyByName(b.stage1Name)
		switch {
		case !ok:
			b.addErr("WithStage1: unknown strategy %q (registered: %v)", b.stage1Name, StrategyNames())
		case s.SelectPairs == nil:
			b.addErr("WithStage1: strategy %q has no Stage-1 role", b.stage1Name)
		default:
			b.cfg.Stage1Strategy = s
		}
	}
	if b.stage2Name != "" {
		s, ok := StrategyByName(b.stage2Name)
		switch {
		case !ok:
			b.addErr("WithStage2: unknown strategy %q (registered: %v)", b.stage2Name, StrategyNames())
		case s.Pack == nil:
			b.addErr("WithStage2: strategy %q has no Stage-2 role", b.stage2Name)
		default:
			b.cfg.Stage2Strategy = s
		}
	}
	if b.solveName != "" {
		s, ok := StrategyByName(b.solveName)
		switch {
		case !ok:
			b.addErr("WithStrategy: unknown strategy %q (registered: %v)", b.solveName, StrategyNames())
		case s.Solve == nil:
			b.addErr("WithStrategy: strategy %q has no full-solve role", b.solveName)
		default:
			b.cfg.SolveStrategy = s
		}
	}
	if b.modelSet && b.cfg.Fleet.IsZero() && b.cfg.Model.CapacityBytesPerHour() <= 0 {
		b.addErr("WithModel: model has no positive VM capacity and no fleet was given")
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	return &Planner{cfg: b.cfg}, nil
}

// Config returns a copy of the planner's underlying solver configuration —
// the bridge for code still consuming SolverConfig-based APIs.
func (p *Planner) Config() SolverConfig { return p.cfg }

// Solve runs the two-stage MCSS heuristic (or the configured full-solve
// strategy). Cancellation is polled at bounded intervals inside every
// stage's hot loop; on cancellation Solve returns ctx.Err() promptly.
func (p *Planner) Solve(ctx context.Context, w *Workload) (*Result, error) {
	return core.SolveContext(ctx, w, p.cfg)
}

// LowerBound computes the fleet-aware Alg. 5 lower bound.
func (p *Planner) LowerBound(ctx context.Context, w *Workload) (Bound, error) {
	return core.LowerBoundContext(ctx, w, p.cfg)
}

// SolveExact computes the optimal solution for tiny instances (at most
// ExactMaxPairs pairs), branching over the planner's fleet.
func (p *Planner) SolveExact(ctx context.Context, w *Workload) (ExactSolution, error) {
	return exact.SolveContext(ctx, w, p.cfg)
}

// Verify checks the solver postconditions (satisfaction, capacity,
// accounting, consistency) for a result obtained under this planner's
// configuration and returns the first violation.
func (p *Planner) Verify(w *Workload, sel *Selection, alloc *Allocation) error {
	return core.VerifyAllocation(w, sel, alloc, p.cfg)
}

// Provision solves the initial allocation and returns an online
// provisioner that keeps it current across workload deltas and failures.
func (p *Planner) Provision(ctx context.Context, w *Workload) (*Provisioner, error) {
	return dynamic.NewContext(ctx, w, p.cfg)
}

// Plan computes the declarative reconfiguration from current (nil = the
// empty cluster) to the solved spec: a serializable DeployPlan carrying
// the workload diff, the executable step sequence, the forecast cost
// delta, and the fingerprint of the state it was computed against. Enact
// it with Apply before the cluster drifts; persist it for review with
// SavePlan. Spec fields override the planner's τ, message size, fleet, and
// full-solve strategy for this plan only.
func (p *Planner) Plan(ctx context.Context, spec DeploySpec, current *ClusterState) (*DeployPlan, error) {
	return deploy.NewPlanner(p.cfg).Plan(ctx, spec, current)
}

// Diff is Plan without the commitment: it computes and returns only the
// declarative difference (workload delta + placement churn, cost fields
// included) between current and the solved spec — what `mcss diff` prints.
func (p *Planner) Diff(ctx context.Context, spec DeploySpec, current *ClusterState) (DeployDiff, error) {
	plan, err := p.Plan(ctx, spec, current)
	if err != nil {
		return DeployDiff{}, err
	}
	return plan.Diff, nil
}

// RunTimeline walks a workload timeline with an elastic controller under
// the given hysteresis policy, re-solving, scaling, and billing every
// epoch. The context cancels between epochs and inside every per-epoch
// solve; the planner's Observer additionally receives OnEpoch callbacks.
func (p *Planner) RunTimeline(ctx context.Context, tl *Timeline, policy ElasticPolicy) (*ElasticRunReport, error) {
	return elastic.NewController(p.cfg, policy).Run(ctx, tl)
}

// SpotRunConfig parameterizes a chaos-mode timeline run against a spot
// market. The zero value is usable: default schedule knobs, chaos seed 0,
// and a 5-minute modeled repair lag.
type SpotRunConfig struct {
	// Schedule tunes the risk premium and repricing hysteresis (zero =
	// defaults: 2 h repair premium, 5% drift threshold).
	Schedule SpotScheduleConfig
	// ChaosSeed draws the per-VM reclamations against the market's
	// per-epoch probabilities (storms fire regardless of the seed).
	ChaosSeed int64
	// LagMinutes is the modeled detect-and-repair lag charged as lost
	// pair-minutes when a reclamation takes pairs down (0 = 5).
	LagMinutes int64
}

// RunTimelineSpot walks a timeline like RunTimeline but against a spot
// market: every epoch the controller reprices its fleet from the market
// (a price delta alone can force a re-solve), packs with the risk-aware
// spot strategy unless the planner configured another Stage-2 strategy,
// bills reclaimed VMs mid-hour, and repairs correlated reclamation groups
// in place. The market must cover the timeline's epochs.
func (p *Planner) RunTimelineSpot(ctx context.Context, tl *Timeline, policy ElasticPolicy, market *SpotMarket, rc SpotRunConfig) (*ElasticRunReport, error) {
	cfg := p.cfg
	if cfg.Stage2Strategy.Pack == nil && cfg.SolveStrategy.Solve == nil {
		s, ok := StrategyByName(spot.StrategyName)
		if !ok {
			return nil, fmt.Errorf("spot strategy %q not registered", spot.StrategyName)
		}
		cfg.Stage2Strategy = s
	}
	sched, err := spot.NewSchedule(market, cfg.EffectiveFleet(), rc.Schedule)
	if err != nil {
		return nil, err
	}
	chaos, err := spot.NewChaos(market, rc.ChaosSeed)
	if err != nil {
		return nil, err
	}
	ctl := elastic.NewController(cfg, policy)
	ctl.SetFleetSchedule(sched)
	ctl.SetChaos(chaos, rc.LagMinutes)
	return ctl.Run(ctx, tl)
}
