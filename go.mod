module github.com/pubsub-systems/mcss

go 1.23
