// Benchmarks regenerating every figure of the MCSS paper's evaluation.
// Each BenchmarkFigN corresponds to one paper figure (see DESIGN.md §4);
// run them all with:
//
//	go test -bench=. -benchmem
//
// The workload scale is controlled by MCSS_BENCH_SCALE (default 0.15 of the
// default experiment size, keeping the full suite in the minutes range;
// under -short the default drops to 0.04 so CI stays fast);
// cmd/experiments runs the same drivers at full scale with table output.
// Custom metrics: cost_usd, vms, bw_gb are reported per benchmark so the
// figure's headline numbers appear directly in the benchmark output.
package mcss_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	mcss "github.com/pubsub-systems/mcss"
	"github.com/pubsub-systems/mcss/internal/core"
	"github.com/pubsub-systems/mcss/internal/dynamic"
	"github.com/pubsub-systems/mcss/internal/experiments"
	"github.com/pubsub-systems/mcss/internal/obs"
	"github.com/pubsub-systems/mcss/internal/pricing"
	"github.com/pubsub-systems/mcss/internal/pubsub"
	"github.com/pubsub-systems/mcss/internal/tracegen"
	"github.com/pubsub-systems/mcss/internal/workload"
)

func benchScale() float64 {
	if s := os.Getenv("MCSS_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	if testing.Short() {
		// CI runs with -short: keep the large workloads out of the
		// benchmark compilation smoke-run.
		return 0.04
	}
	return 0.15
}

// benchLadder runs one Fig. 2/3 panel per iteration and reports the full
// solution's headline metrics at τ=10.
func benchLadder(b *testing.B, d experiments.Dataset, inst pricing.InstanceType) {
	b.Helper()
	scale := benchScale()
	var last *experiments.LadderResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLadder(context.Background(), d, inst, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Tau == 10 && row.Rung == "(e) +cost decision" {
			b.ReportMetric(row.CostUSD, "cost_usd")
			b.ReportMetric(float64(row.VMs), "vms")
			b.ReportMetric(row.BandwidthGB, "bw_gb")
		}
	}
	b.ReportMetric(last.Savings(10)*100, "saving_pct_tau10")
	if testing.Verbose() {
		b.Log("\n" + last.Table().String())
	}
}

// BenchmarkFig2aSpotifyC3Large regenerates Fig. 2a: the optimization ladder
// on the Spotify-like trace with c3.large-class capacity.
func BenchmarkFig2aSpotifyC3Large(b *testing.B) {
	benchLadder(b, experiments.Spotify, pricing.C3Large)
}

// BenchmarkFig2bSpotifyC3XLarge regenerates Fig. 2b (c3.xlarge).
func BenchmarkFig2bSpotifyC3XLarge(b *testing.B) {
	benchLadder(b, experiments.Spotify, pricing.C3XLarge)
}

// BenchmarkFig3aTwitterC3Large regenerates Fig. 3a: the ladder on the
// Twitter-like trace with c3.large-class capacity.
func BenchmarkFig3aTwitterC3Large(b *testing.B) {
	benchLadder(b, experiments.Twitter, pricing.C3Large)
}

// BenchmarkFig3bTwitterC3XLarge regenerates Fig. 3b (c3.xlarge).
func BenchmarkFig3bTwitterC3XLarge(b *testing.B) {
	benchLadder(b, experiments.Twitter, pricing.C3XLarge)
}

// benchStage1Runtime reproduces Figs. 4–5: GSP vs RSP wall time per τ.
func benchStage1Runtime(b *testing.B, d experiments.Dataset) {
	b.Helper()
	w, err := experiments.Generate(d, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	for _, tau := range experiments.Taus {
		b.Run(fmt.Sprintf("GSP/tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GreedySelectPairs(w, tau)
			}
		})
		b.Run(fmt.Sprintf("RSP/tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RandomSelectPairs(w, tau)
			}
		})
	}
}

// BenchmarkFig4Stage1RuntimeSpotify regenerates Fig. 4.
func BenchmarkFig4Stage1RuntimeSpotify(b *testing.B) {
	benchStage1Runtime(b, experiments.Spotify)
}

// BenchmarkFig5Stage1RuntimeTwitter regenerates Fig. 5.
func BenchmarkFig5Stage1RuntimeTwitter(b *testing.B) {
	benchStage1Runtime(b, experiments.Twitter)
}

// benchStage2Runtime reproduces Figs. 6–7: CBP vs FFBP on the same GSP
// selection.
func benchStage2Runtime(b *testing.B, d experiments.Dataset) {
	b.Helper()
	w, err := experiments.Generate(d, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	for _, tau := range experiments.Taus {
		sel := core.GreedySelectPairs(w, tau)
		cbpCfg := core.Config{Tau: tau, MessageBytes: experiments.MessageBytes, Model: model, Opts: core.OptAll}
		ffCfg := core.Config{Tau: tau, MessageBytes: experiments.MessageBytes, Model: model}
		b.Run(fmt.Sprintf("CBP/tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CustomBinPacking(sel, cbpCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("FFBP/tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FFBinPacking(sel, ffCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Stage2RuntimeSpotify regenerates Fig. 6.
func BenchmarkFig6Stage2RuntimeSpotify(b *testing.B) {
	benchStage2Runtime(b, experiments.Spotify)
}

// BenchmarkFig7Stage2RuntimeTwitter regenerates Fig. 7.
func BenchmarkFig7Stage2RuntimeTwitter(b *testing.B) {
	benchStage2Runtime(b, experiments.Twitter)
}

// BenchmarkFig8FollowCCDF regenerates Fig. 8 (follower/following CCDFs).
func BenchmarkFig8FollowCCDF(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		ta, err := experiments.RunTraceAnalysis(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		points = len(ta.FollowersCCDF) + len(ta.FollowingsCCDF)
	}
	b.ReportMetric(float64(points), "ccdf_points")
}

// BenchmarkFig9EventRateCCDF regenerates Fig. 9.
func BenchmarkFig9EventRateCCDF(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		ta, err := experiments.RunTraceAnalysis(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		points = len(ta.EventRateCCDF)
	}
	b.ReportMetric(float64(points), "ccdf_points")
}

// BenchmarkFig10RateVsFollowers regenerates Fig. 10.
func BenchmarkFig10RateVsFollowers(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		ta, err := experiments.RunTraceAnalysis(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		points = len(ta.RateVsFollowers)
	}
	b.ReportMetric(float64(points), "buckets")
}

// BenchmarkFig11SCCCDF regenerates Fig. 11.
func BenchmarkFig11SCCCDF(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		ta, err := experiments.RunTraceAnalysis(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		points = len(ta.SCCCDF)
	}
	b.ReportMetric(float64(points), "ccdf_points")
}

// BenchmarkFig12SCVsFollowings regenerates Fig. 12.
func BenchmarkFig12SCVsFollowings(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		ta, err := experiments.RunTraceAnalysis(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		points = len(ta.SCVsFollowings)
	}
	b.ReportMetric(float64(points), "buckets")
}

// --- Ablation and micro benchmarks -----------------------------------------

// BenchmarkAblationStage2Rungs measures every CBP optimization rung
// separately on the same selection — the per-optimization cost data behind
// the §IV-D discussion.
func BenchmarkAblationStage2Rungs(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	sel := core.GreedySelectPairs(w, 100)
	rungs := []struct {
		name string
		opts core.OptFlags
	}{
		{"group-only", 0},
		{"expensive-first", core.OptExpensiveTopicFirst},
		{"most-free-vm", core.OptExpensiveTopicFirst | core.OptMostFreeVM},
		{"cost-based", core.OptAll},
	}
	for _, rung := range rungs {
		cfg := core.Config{Tau: 100, MessageBytes: experiments.MessageBytes, Model: model, Opts: rung.opts}
		b.Run(rung.name, func(b *testing.B) {
			var alloc *core.Allocation
			for i := 0; i < b.N; i++ {
				var err error
				alloc, err = core.CustomBinPacking(sel, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(alloc.NumVMs()), "vms")
			b.ReportMetric(float64(alloc.TotalBytesPerHour()), "bytes_per_hour")
		})
	}
}

// BenchmarkStage2IndexedVsNaive pits every indexed packer against its
// retained O(P·V) reference implementation on the same Twitter-like GSP
// selection — the complexity gap of this repo's sub-quadratic packing
// engine, kept visible in every benchmark run. The differential property
// tests in internal/core prove the pairs byte-identical; this benchmark
// proves the index is worth its bookkeeping.
func BenchmarkStage2IndexedVsNaive(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	sel := core.GreedySelectPairs(w, 1000)
	base := core.Config{Tau: 1000, MessageBytes: experiments.MessageBytes, Model: model}
	cbp := base
	cbp.Opts = core.OptAll
	packers := []struct {
		name string
		run  func() (*core.Allocation, error)
	}{
		{"FFBP/indexed", func() (*core.Allocation, error) { return core.FFBinPacking(sel, base) }},
		{"FFBP/naive", func() (*core.Allocation, error) { return core.FFBinPackingNaive(sel, base) }},
		{"CBP/indexed", func() (*core.Allocation, error) { return core.CustomBinPacking(sel, cbp) }},
		{"CBP/naive", func() (*core.Allocation, error) { return core.CustomBinPackingNaive(sel, cbp) }},
		{"BFD/indexed", func() (*core.Allocation, error) { return core.BFDBinPacking(sel, base) }},
		{"BFD/naive", func() (*core.Allocation, error) { return core.BFDBinPackingNaive(sel, base) }},
	}
	for _, p := range packers {
		b.Run(p.name, func(b *testing.B) {
			var alloc *core.Allocation
			for i := 0; i < b.N; i++ {
				var err error
				alloc, err = p.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(alloc.NumVMs()), "vms")
			b.ReportMetric(float64(sel.NumPairs()), "pairs")
		})
	}
}

// BenchmarkGreedySelectPairs is the Stage-1 hot-path micro benchmark.
func BenchmarkGreedySelectPairs(b *testing.B) {
	w, err := tracegen.Twitter(tracegen.DefaultTwitterConfig().Scale(0.05))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedySelectPairs(w, 100)
	}
	b.ReportMetric(float64(w.NumPairs()), "pairs")
}

// BenchmarkLowerBound measures the Alg. 5 bound computation.
func BenchmarkLowerBound(b *testing.B) {
	w, err := tracegen.Twitter(tracegen.DefaultTwitterConfig().Scale(0.05))
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	cfg := core.Config{Tau: 100, MessageBytes: 200, Model: model}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LowerBound(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadConstruction measures CSR assembly from generator output.
func BenchmarkWorkloadConstruction(b *testing.B) {
	cfg := tracegen.DefaultTwitterConfig().Scale(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracegen.Twitter(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSolve measures the complete pipeline (the paper's §IV-E
// total runtime claim: the full solution is fast enough to re-run
// periodically).
func BenchmarkEndToEndSolve(b *testing.B) {
	for _, d := range []experiments.Dataset{experiments.Spotify, experiments.Twitter} {
		w, err := experiments.Generate(d, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		model := experiments.ModelFor(pricing.C3Large, w)
		cfg := core.DefaultConfig(1000, model)
		b.Run(d.String(), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Solve(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.NumPairs()), "pairs")
			b.ReportMetric(float64(res.Allocation.NumVMs()), "vms")
		})
	}
}

// BenchmarkSolve is the pre-redesign entry point: the deprecated
// package-level Solve under the paper's default config. Together with
// BenchmarkPlannerSolve it bounds the cost of the v2 API's context
// plumbing — CI runs the pair as a smoke comparison, and the acceptance
// bar is ≤ 2% regression of PlannerSolve vs Solve (both run the same
// engine; the ctx checks amortize to one poll per 8192 loop units).
func BenchmarkSolve(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	cfg := mcss.DefaultConfig(100, model)
	b.ResetTimer()
	var res *mcss.Result
	for i := 0; i < b.N; i++ {
		res, err = mcss.Solve(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.NumPairs()), "pairs")
	b.ReportMetric(float64(res.Allocation.NumVMs()), "vms")
}

// BenchmarkPlannerSolve is the identical solve through the context-aware
// Planner path (NewPlanner + Solve(ctx, w)); compare against
// BenchmarkSolve to measure the ctx/observer plumbing overhead.
func BenchmarkPlannerSolve(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	p, err := mcss.NewPlanner(mcss.WithTau(100), mcss.WithModel(model))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	var res *mcss.Result
	for i := 0; i < b.N; i++ {
		res, err = p.Solve(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.NumPairs()), "pairs")
	b.ReportMetric(float64(res.Allocation.NumVMs()), "vms")
}

// BenchmarkPlannerSolveMetrics is BenchmarkPlannerSolve with the full
// metrics observer attached — the registry-overhead guard. Compare against
// BenchmarkPlannerSolve in the same run: the instrumented solve must stay
// within ~2% (the observer only touches the registry at stage completion,
// never inside the per-batch progress path).
func BenchmarkPlannerSolveMetrics(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	m := obs.NewMetrics(nil)
	p, err := mcss.NewPlanner(mcss.WithTau(100), mcss.WithModel(model),
		mcss.WithObserver(m.Observer()))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	var res *mcss.Result
	for i := 0; i < b.N; i++ {
		res, err = p.Solve(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.NumPairs()), "pairs")
	b.ReportMetric(float64(res.Allocation.NumVMs()), "vms")
}

// BenchmarkSimulate measures the discrete-event simulator's throughput.
func BenchmarkSimulate(b *testing.B) {
	w, err := tracegen.Random(tracegen.RandomConfig{
		Topics: 200, Subscribers: 1000, MaxFollowings: 5, MaxRate: 60, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	var maxRate int64
	for t := 0; t < w.NumTopics(); t++ {
		if r := w.Rate(workload.TopicID(t)); r > maxRate {
			maxRate = r
		}
	}
	model := pricing.NewModel(pricing.C3Large)
	model.CapacityOverrideBytesPerHour = 8 * maxRate * 200
	cfg := core.DefaultConfig(100, model)
	res, err := core.Solve(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		sim, err := pubsub.Simulate(w, res.Allocation, pubsub.SimConfig{
			DurationHours: 4,
			MessageBytes:  200,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = sim.Events
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkAblationGSPParallel measures the parallel Stage-1 speedup over
// worker counts (result identical to serial; see
// core.GreedySelectPairsParallel).
func BenchmarkAblationGSPParallel(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GreedySelectPairsParallel(w, 100, workers)
			}
			b.ReportMetric(float64(w.NumPairs()), "pairs")
		})
	}
}

// BenchmarkAblationBestFit compares the three pair-granularity packers and
// grouped CBP on one selection; see internal/core/bestfit.go for why BFD is
// an interesting non-paper baseline.
func BenchmarkAblationBestFit(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	sel := core.GreedySelectPairs(w, 100)
	cfg := core.Config{Tau: 100, MessageBytes: experiments.MessageBytes, Model: model}
	packers := []struct {
		name string
		run  func() (*core.Allocation, error)
	}{
		{"FFBP", func() (*core.Allocation, error) { return core.FFBinPacking(sel, cfg) }},
		{"BFD", func() (*core.Allocation, error) { return core.BFDBinPacking(sel, cfg) }},
		{"CBP", func() (*core.Allocation, error) {
			c := cfg
			c.Opts = core.OptAll
			return core.CustomBinPacking(sel, c)
		}},
	}
	for _, p := range packers {
		b.Run(p.name, func(b *testing.B) {
			var alloc *core.Allocation
			for i := 0; i < b.N; i++ {
				var err error
				alloc, err = p.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(alloc.NumVMs()), "vms")
			b.ReportMetric(float64(alloc.TotalBytesPerHour()), "bytes_per_hour")
		})
	}
}

// BenchmarkPlanApply measures the declarative lifecycle end to end on a
// Twitter-like workload: one Planner.Plan (solve + diff + step extraction
// + fingerprinting) and one Apply (fingerprint check, step replay, target
// verification, adoption) per iteration, bootstrapping from the empty
// cluster. The reported plan_steps and plan_usd make plan size visible
// next to the timing.
func BenchmarkPlanApply(b *testing.B) {
	w, err := experiments.Generate(experiments.Twitter, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.ModelFor(pricing.C3Large, w)
	p, err := mcss.NewPlanner(mcss.WithTau(100), mcss.WithModel(model))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var plan *mcss.DeployPlan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err = p.Plan(ctx, mcss.DeploySpec{Workload: w}, nil)
		if err != nil {
			b.Fatal(err)
		}
		prov, err := mcss.RestoreProvisioner(mcss.EmptyClusterState(), p.Config())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mcss.Apply(ctx, plan, prov); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(plan.Steps)), "plan_steps")
	b.ReportMetric(plan.CostAfter.USD(), "plan_usd")
}

// BenchmarkDiurnalController runs the full three-strategy diurnal
// comparison (24-epoch Twitter-like timeline; static peak, oracle, and
// hysteresis elastic controller) per iteration and reports the headline
// bills.
func BenchmarkDiurnalController(b *testing.B) {
	scale := benchScale()
	var last *experiments.DiurnalResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiurnal(context.Background(), experiments.Twitter, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Hysteresis.TotalCost().USD(), "elastic_usd")
	b.ReportMetric(last.Static.TotalCost().USD(), "static_usd")
	b.ReportMetric(last.SavingsVsStatic()*100, "savings_pct")
	b.ReportMetric(float64(last.Hysteresis.TotalMoved()), "moved_pairs")
}

// BenchmarkUpdateIncrementalVsFull measures absorbing one churn delta (2%
// of pairs plus rate changes) through the persistent indexed state versus
// the full two-stage re-solve, on the scale sweep's workload and fleet —
// the benchmark behind BENCH_6.json's headline speedup. Each iteration
// restores a fresh provisioner and warms the index untimed, so the timed
// region is exactly one epoch of delta-proportional work (or one full
// solve).
func BenchmarkUpdateIncrementalVsFull(b *testing.B) {
	pairs := int64(160_000)
	if testing.Short() {
		pairs = 20_000
	}
	w, cfg, err := experiments.ChurnSetup(pairs)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Solve(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Seed 2 is a representative delta the incremental path absorbs without
	// a regret fallback at either bench size (a fallback would silently
	// benchmark the full solver twice); the churn sweep (BENCH_6.json)
	// reports the honest distribution including fallbacks.
	d := experiments.ChurnDelta(rand.New(rand.NewSource(2)), w, 0.02)
	ctx := context.Background()

	b.Run("incremental", func(b *testing.B) {
		var stats dynamic.MigrationStats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prov := dynamic.Restore(w, res, cfg)
			if _, err := prov.UpdateIncremental(ctx, dynamic.Delta{}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			var err error
			stats, err = prov.UpdateIncremental(ctx, d)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(w.NumPairs()), "pairs")
		b.ReportMetric(float64(stats.PairsMoved), "pairs_moved")
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prov := dynamic.Restore(w, res, cfg)
			b.StartTimer()
			if _, err := prov.UpdateContext(ctx, d); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(w.NumPairs()), "pairs")
	})
}
